(* Tests for the observability subsystem (lib/obs): the trace-event
   JSON exporter is validated against a real JSON parser, a qcheck
   property drives random span trees through the collector, and two
   determinism pins guarantee that tracing observes without steering —
   the golden mapper corpus and a sweep run must be byte-identical with
   the collector on or off. *)

module Trace = Iced_obs.Trace
module Export = Iced_obs.Export
module Metrics = Iced_obs.Metrics

(* ---------------- the strict JSON parser ----------------

   Validation against the trace-event format has to start from the raw
   bytes the exporter produced.  The strict recursive-descent parser
   that used to live here is now [Iced_util.Json.parse] (the serving
   daemon decodes protocol frames with it); these tests consume it
   through the same public API. *)

type json = Iced_util.Json.value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  match Iced_util.Json.parse s with
  | Ok v -> v
  | Error e -> raise (Bad_json (Iced_util.Json.error_to_string e))

let member = Iced_util.Json.member

let num_member key ev =
  match member key ev with
  | Some (Num f) -> f
  | _ -> raise (Bad_json (Printf.sprintf "missing numeric member %S" key))

let str_member key ev =
  match member key ev with
  | Some (Str s) -> s
  | _ -> raise (Bad_json (Printf.sprintf "missing string member %S" key))

(* Validate a rendered document against the trace-event contract.
   Returns the parsed event objects for further assertions. *)
let validate_doc doc_str =
  let doc = parse_json doc_str in
  (match member "displayTimeUnit" doc with
  | Some (Str "ms") -> ()
  | _ -> failwith "displayTimeUnit missing or not \"ms\"");
  let events =
    match member "traceEvents" doc with
    | Some (Arr l) -> l
    | _ -> failwith "traceEvents missing or not an array"
  in
  (* Per (pid, tid) track: "B" pushes, "E" pops a non-empty stack, the
     stack drains by the end, and timestamps never step backwards. *)
  let tracks : (float * float, float * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let ph = str_member "ph" ev in
      let pid = num_member "pid" ev in
      let tid = num_member "tid" ev in
      let ts = num_member "ts" ev in
      ignore (str_member "name" ev);
      if pid <> float_of_int Export.pid then failwith "unexpected pid";
      if not (List.mem ph [ "B"; "E"; "i"; "C" ]) then
        failwith ("unexpected phase " ^ ph);
      if ph = "i" && member "s" ev <> Some (Str "t") then
        failwith "instant without thread scope";
      let last_ts, depth =
        match Hashtbl.find_opt tracks (pid, tid) with
        | Some st -> st
        | None -> (neg_infinity, 0)
      in
      if ts < last_ts then
        failwith
          (Printf.sprintf "timestamp regression on tid %g: %.3f < %.3f" tid ts
             last_ts);
      let depth =
        match ph with
        | "B" -> depth + 1
        | "E" -> if depth = 0 then failwith "E without matching B" else depth - 1
        | _ -> depth
      in
      Hashtbl.replace tracks (pid, tid) (ts, depth))
    events;
  Hashtbl.iter
    (fun (_, tid) (_, depth) ->
      if depth <> 0 then
        failwith (Printf.sprintf "%d unclosed B events on tid %g" depth tid))
    tracks;
  events

(* ---------------- property: random span trees ---------------- *)

(* A random tree of spans with instants and counters at the leaves,
   executed for real through the collector.  Shapes the generator
   cannot produce (orphan ends, overflow) get their own tests below. *)
type tree =
  | Span of string * tree list
  | Leaf_instant
  | Leaf_counter

let tree_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self size ->
           let leaf = oneofl [ Leaf_instant; Leaf_counter ] in
           if size = 0 then leaf
           else
             frequency
               [
                 (1, leaf);
                 ( 3,
                   map2
                     (fun name kids -> Span (name, kids))
                     (oneofl [ "alpha"; "beta"; "gamma"; "delta" ])
                     (list_size (int_bound 3) (self (size / 2))) );
               ]))

let rec count_spans = function
  | Span (_, kids) -> 1 + List.fold_left (fun a k -> a + count_spans k) 0 kids
  | Leaf_instant | Leaf_counter -> 0

let rec exec = function
  | Span (name, kids) ->
    Trace.with_span
      ~args:[ ("depth", Trace.Int (List.length kids)) ]
      ~cat:"prop" ~name
      (fun () ->
        Trace.span_arg "visited" (Trace.Bool true);
        List.iter exec kids)
  | Leaf_instant -> Trace.instant ~cat:"prop" ~name:"tick" ()
  | Leaf_counter -> Trace.counter ~cat:"prop" ~name:"load" [ ("v", 1.0) ]

let prop_random_tree_exports_valid_json =
  QCheck.Test.make ~name:"random span tree exports valid trace JSON" ~count:60
    (QCheck.make ~print:(fun f -> string_of_int (count_spans f)) tree_gen)
    (fun forest ->
      Trace.start ();
      exec forest;
      Trace.stop ();
      let events = Trace.events () in
      let doc = Export.trace_json events in
      Trace.clear ();
      let parsed = validate_doc doc in
      let begins =
        List.length
          (List.filter (fun ev -> str_member "ph" ev = "B") parsed)
      in
      (* nothing overflowed, so every span must survive the round trip *)
      begins = count_spans forest)

(* ---------------- exporter edge cases ---------------- *)

let test_export_rebalances_overflow () =
  (* A tiny ring in a fresh domain (capacity applies to buffers created
     after the call) forces overwrites; the exporter must still emit a
     balanced, parseable document and [dropped] must own up to the
     loss. *)
  Trace.set_capacity 32;
  Trace.start ();
  let worker =
    Domain.spawn (fun () ->
        for i = 1 to 100 do
          Trace.with_span ~cat:"ring" ~name:"outer" (fun () ->
              Trace.with_span ~cat:"ring" ~name:"inner" (fun () ->
                  Trace.instant
                    ~args:[ ("i", Trace.Int i) ]
                    ~cat:"ring" ~name:"tick" ()))
        done)
  in
  Domain.join worker;
  Trace.stop ();
  let dropped = Trace.dropped () in
  let doc = Export.trace_json (Trace.events ()) in
  Trace.clear ();
  Trace.set_capacity (1 lsl 18);
  Alcotest.(check bool) "ring overflowed" true (dropped > 0);
  let parsed = validate_doc doc in
  Alcotest.(check bool) "survivors exported" true (parsed <> [])

let test_export_escapes_hostile_strings () =
  Trace.start ();
  Trace.with_span
    ~args:[ ("note", Trace.Str "quote\" slash\\ newline\n tab\t ctrl\001") ]
    ~cat:"weird\"cat" ~name:"name\\with\nescapes"
    (fun () -> ());
  Trace.stop ();
  let doc = Export.trace_json (Trace.events ()) in
  Trace.clear ();
  ignore (validate_doc doc)

let test_suppress_hides_events () =
  Trace.start ();
  Trace.suppress (fun () ->
      Trace.with_span ~cat:"quiet" ~name:"hidden" (fun () ->
          Trace.instant ~cat:"quiet" ~name:"hidden_tick" ()));
  Trace.with_span ~cat:"loud" ~name:"visible" (fun () -> ());
  Trace.stop ();
  let events = Trace.events () in
  Trace.clear ();
  Alcotest.(check bool) "suppressed events absent" true
    (List.for_all (fun e -> e.Trace.cat <> "quiet") events);
  Alcotest.(check int) "visible span recorded" 2
    (List.length (List.filter (fun e -> e.Trace.cat = "loud") events))

let test_capture_writes_on_exception () =
  let out = Filename.temp_file "iced_obs" ".json" in
  (try
     Export.capture ~out (fun () ->
         Trace.with_span ~cat:"cap" ~name:"doomed" (fun () -> raise Exit))
   with Exit -> ());
  let ic = open_in out in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  Sys.remove out;
  let parsed = validate_doc doc in
  Alcotest.(check bool) "doomed span exported despite the raise" true
    (List.exists (fun ev -> str_member "name" ev = "doomed") parsed)

(* ---------------- metrics ---------------- *)

let test_metrics_instruments () =
  Metrics.reset ();
  Metrics.incr "req";
  Metrics.incr ~by:4 "req";
  Metrics.gauge "temp" 2.5;
  Metrics.gauge "temp" 3.5;
  Metrics.observe "lat" 0.001;
  Metrics.observe "lat" 3.0;
  Alcotest.(check (option int)) "counter accumulates" (Some 5)
    (Metrics.counter_value "req");
  Alcotest.(check (option (float 1e-9))) "gauge last-write-wins" (Some 3.5)
    (Metrics.gauge_value "temp");
  (match Metrics.histogram_stats "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some (count, sum, mn, mx) ->
    Alcotest.(check int) "sample count" 2 count;
    Alcotest.(check (float 1e-9)) "sum" 3.001 sum;
    Alcotest.(check (float 1e-9)) "min" 0.001 mn;
    Alcotest.(check (float 1e-9)) "max" 3.0 mx);
  Alcotest.(check (option int)) "unknown counter" None
    (Metrics.counter_value "nope");
  let doc = parse_json (Metrics.to_json ()) in
  (match member "counters" doc with
  | Some (Obj [ ("req", Num 5.0) ]) -> ()
  | _ -> Alcotest.fail "counters member malformed");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "csv mentions every instrument" true
    (let csv = Metrics.to_csv () in
     List.for_all (contains csv) [ "req"; "temp"; "lat" ]);
  Metrics.reset ();
  Alcotest.(check (option int)) "reset forgets" None
    (Metrics.counter_value "req")

(* ---------------- determinism pins ---------------- *)

open Iced_explore

let sweep_spec =
  {
    Space.fabrics = [ (4, 4) ];
    islands = [ (2, 2); (4, 4) ];
    spm_banks = [ 8 ];
    floors = [ Iced_arch.Dvfs.Rest ];
    unrolls = [ 1 ];
    max_iis = [ 32 ];
  }

let sweep_kernels = List.filter_map Iced_kernels.Registry.by_name [ "fir"; "relu" ]

let test_sweep_tracing_deterministic () =
  (* The acceptance bar from the tracing design: Sweep.run with the
     collector live must return byte-identical reports to a run with it
     off, serial and parallel alike. *)
  let run ~collector ~trace ~workers =
    if collector then Trace.start ();
    let config = { Sweep.default_config with Sweep.workers } in
    let outcomes, _ =
      Sweep.run ~config ~trace ~cache:(Cache.in_memory ())
        (Space.enumerate sweep_spec) sweep_kernels
    in
    if collector then begin
      Trace.stop ();
      Trace.clear ()
    end;
    Report.render outcomes ^ "\n---\n" ^ Report.csv outcomes
  in
  let baseline = run ~collector:false ~trace:false ~workers:1 in
  Alcotest.(check string) "traced serial = untraced serial" baseline
    (run ~collector:true ~trace:true ~workers:1);
  Alcotest.(check string) "traced 4 domains = untraced serial" baseline
    (run ~collector:true ~trace:true ~workers:4);
  Alcotest.(check string) "trace:false under live collector" baseline
    (run ~collector:true ~trace:false ~workers:4)

let test_sweep_traced_spans_recorded () =
  Trace.start ();
  let config = { Sweep.default_config with Sweep.workers = 2 } in
  let _ =
    Sweep.run ~config ~cache:(Cache.in_memory ())
      (Space.enumerate sweep_spec) sweep_kernels
  in
  Trace.stop ();
  let events = Trace.events () in
  let doc = Export.trace_json events in
  Trace.clear ();
  ignore (validate_doc doc);
  let spans name =
    List.filter
      (fun e ->
        e.Trace.phase = Trace.Begin && e.Trace.cat = "sweep"
        && e.Trace.name = name)
      events
  in
  Alcotest.(check int) "one sweep run span" 1 (List.length (spans "run"));
  Alcotest.(check int) "one point span per fresh (point, kernel)" 4
    (List.length (spans "point"));
  Alcotest.(check bool) "worker spans carry worker tids" true
    (List.exists (fun e -> e.Trace.tid <> (Domain.self () :> int)) (spans "point"))

let golden_path = "golden/mapper_golden.txt"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_golden_corpus_with_tracing_on () =
  (* The strongest available pin that tracing never steers the mapper:
     re-map the entire differential corpus with the collector recording
     and require every fingerprint line byte-identical to the golden
     file (the same file test_differential checks with tracing off). *)
  Trace.start ();
  let actual = Iced_testgen.Diff_gen.golden_lines () in
  Trace.stop ();
  let recorded = Trace.events () <> [] in
  Trace.clear ();
  Alcotest.(check bool) "collector actually recorded mapper spans" true recorded;
  let expected = read_lines golden_path in
  Alcotest.(check int) "corpus size" (List.length expected) (List.length actual);
  List.iter2
    (fun e a ->
      if not (String.equal e a) then
        Alcotest.failf "tracing perturbed a mapping\n  golden: %s\n  traced: %s" e a)
    expected actual

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_tree_exports_valid_json;
    ("export re-balances ring overflow", `Quick, test_export_rebalances_overflow);
    ("export escapes hostile strings", `Quick, test_export_escapes_hostile_strings);
    ("suppress hides events", `Quick, test_suppress_hides_events);
    ("capture writes outputs on exception", `Quick, test_capture_writes_on_exception);
    ("metrics instruments and export", `Quick, test_metrics_instruments);
    ("sweep byte-identical with tracing on/off, 1 vs 4 domains", `Slow,
     test_sweep_tracing_deterministic);
    ("sweep records run/point spans on worker domains", `Quick,
     test_sweep_traced_spans_recorded);
    ("golden corpus byte-identical with tracing on", `Slow,
     test_golden_corpus_with_tracing_on);
  ]
