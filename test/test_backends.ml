(* Tests for the pluggable placement/routing backends: preset name
   round-trips, default-backend byte identity, simulated-annealing
   determinism, Pathfinder congestion-free commits, and a property
   pinning that every backend's output validates. *)

open Iced_arch
open Iced_dfg
open Iced_mapper

let cgra = Cgra.iced_6x6
let fir = Option.get (Iced_kernels.Registry.by_name "fir")

let render (m : Mapping.t) = Format.asprintf "%a" Mapping.pp m

let map_with backend (k : Iced_kernels.Kernel.t) =
  Mapper.map (Mapper.request ~backend cgra) k.dfg

(* ---------------- preset names ---------------- *)

let test_name_roundtrip () =
  List.iter
    (fun b ->
      match Backend.of_string (Backend.to_string b) with
      | Ok b' ->
        Alcotest.(check string)
          (Backend.to_string b ^ " round-trips")
          (Backend.to_string b) (Backend.to_string b')
      | Error msg -> Alcotest.fail msg)
    [
      Backend.default;
      Backend.sa;
      Backend.pathfinder;
      { Backend.sa with placer = Backend.Annealing { Backend.default_sa_params with seed = 7 } };
      {
        Backend.placer = Backend.Annealing { Backend.default_sa_params with seed = 3 };
        router = Backend.Incremental;
      };
    ];
  List.iter
    (fun name ->
      match Backend.of_string name with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" name)
      | Error _ -> ())
    [ ""; "greedy"; "sa:"; "sa:x"; "sa:-1"; "pathfinder:3"; "Default" ]

let test_preset_names_parse () =
  List.iter
    (fun name ->
      match Backend.of_string name with
      | Ok b -> Alcotest.(check string) name name (Backend.to_string b)
      | Error msg -> Alcotest.fail msg)
    Backend.names

(* ---------------- default backend is the implicit one -------------- *)

let test_default_backend_identity () =
  let implicit = Mapper.map_exn (Mapper.request cgra) fir.dfg in
  let explicit = Mapper.map_exn (Mapper.request ~backend:Backend.default cgra) fir.dfg in
  Alcotest.(check string) "explicit default = implicit" (render implicit)
    (render explicit)

(* ---------------- SA determinism ---------------- *)

let sa_seeded seed =
  {
    Backend.placer = Backend.Annealing { Backend.default_sa_params with seed };
    router = Backend.Negotiated Backend.default_pf_params;
  }

let test_sa_same_seed_deterministic () =
  match (map_with (sa_seeded 11) fir, map_with (sa_seeded 11) fir) with
  | Ok a, Ok b -> Alcotest.(check string) "same seed, same bytes" (render a) (render b)
  | Error msg, _ | _, Error msg -> Alcotest.fail msg

let test_sa_seeds_explore_differently () =
  (* equal seeds must agree (above); distinct seeds must at least walk
     a different move stream — visible in the mapping bytes or in the
     accept/reject telemetry *)
  let run seed =
    let stats = Mapper.create_stats () in
    match Mapper.map ~stats (Mapper.request ~backend:(sa_seeded seed) cgra) fir.dfg with
    | Ok m -> (render m, stats.Mapper.sa_moves_accepted, stats.Mapper.sa_moves_rejected)
    | Error msg -> Alcotest.fail msg
  in
  let r1, a1, j1 = run 1 and r2, a2, j2 = run 2 in
  Alcotest.(check bool) "seeds 1 and 2 diverge" true
    (r1 <> r2 || a1 <> a2 || j1 <> j2)

let test_sa_counters_populate () =
  let stats = Mapper.create_stats () in
  (match Mapper.map ~stats (Mapper.request ~backend:Backend.sa cgra) fir.dfg with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "sa moves counted" true
    (stats.Mapper.sa_moves_accepted + stats.Mapper.sa_moves_rejected > 0);
  Alcotest.(check bool) "temperature steps counted" true (stats.Mapper.sa_temp_steps > 0)

(* ---------------- Pathfinder ---------------- *)

let test_pathfinder_validates () =
  List.iter
    (fun name ->
      let k = Option.get (Iced_kernels.Registry.by_name name) in
      match map_with Backend.pathfinder k with
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
      | Ok m -> (
        let m = Levels.assign m in
        match Validate.check m with
        | Ok () -> ()
        | Error es ->
          Alcotest.fail
            (Printf.sprintf "%s: residual conflict after negotiation: %s" name
               (String.concat "; " es))))
    [ "fir"; "latnrm"; "fft" ]

let test_pathfinder_counters_populate () =
  let stats = Mapper.create_stats () in
  (match Mapper.map ~stats (Mapper.request ~backend:Backend.pathfinder cgra) fir.dfg with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "negotiation rounds counted" true (stats.Mapper.pf_rounds > 0)

(* ---------------- property: every backend's output validates ------- *)

let prop_all_backends_validate =
  QCheck.Test.make ~name:"all backends map and validate random loops" ~count:15
    QCheck.(pair (3 -- 8) small_nat)
    (fun (n, seed) ->
      let rng = Iced_util.Rng.create seed in
      let g = Graph.empty in
      let g, phi = Graph.add_node g Op.Phi in
      let g, nodes =
        List.fold_left
          (fun (g, acc) _ ->
            let op = Iced_util.Rng.choose rng [ Op.Add; Op.Mul; Op.Xor ] in
            let g, id = Graph.add_node g op in
            let src = Iced_util.Rng.choose rng (phi :: acc) in
            let g = Graph.add_edge g src id in
            (g, id :: acc))
          (g, []) (List.init n (fun i -> i))
      in
      let g = Graph.add_edge ~distance:1 g (List.hd nodes) phi in
      List.for_all
        (fun backend ->
          match Mapper.map (Mapper.request ~backend cgra) g with
          | Error _ -> false
          | Ok m -> (
            match Validate.check (Levels.assign m) with Ok () -> true | Error _ -> false))
        [ Backend.default; Backend.sa; Backend.pathfinder ])

let suite =
  [
    ("backend: preset names parse", `Quick, test_preset_names_parse);
    ("backend: name round-trip + rejects", `Quick, test_name_roundtrip);
    ("backend: explicit default is the implicit pair", `Quick, test_default_backend_identity);
    ("sa: same seed, byte-identical mapping", `Quick, test_sa_same_seed_deterministic);
    ("sa: distinct seeds explore differently", `Quick, test_sa_seeds_explore_differently);
    ("sa: telemetry counters populate", `Quick, test_sa_counters_populate);
    ("pathfinder: zero residual congestion", `Slow, test_pathfinder_validates);
    ("pathfinder: telemetry counters populate", `Quick, test_pathfinder_counters_populate);
    QCheck_alcotest.to_alcotest prop_all_backends_validate;
  ]
