(* The CDCL solver behind the exact-mapping oracle: unit propagation,
   clause learning, cardinality encodings, pigeonhole UNSAT, budget
   behaviour, determinism, and a brute-force differential on random
   small CNFs. *)

module Solver = Iced_sat.Solver
module Card = Iced_sat.Card
module Dimacs = Iced_sat.Dimacs

let outcome =
  Alcotest.testable
    (fun fmt o ->
      Format.pp_print_string fmt
        (match o with
        | Solver.Sat -> "sat"
        | Solver.Unsat -> "unsat"
        | Solver.Unknown -> "unknown"))
    ( = )

let fresh n =
  let s = Solver.create () in
  let vars = Array.init n (fun _ -> Solver.new_var s) in
  (s, vars)

let test_unit_propagation () =
  (* a, a -> b, b -> c: all forced true without a single decision *)
  let s, v = fresh 3 in
  Solver.add_clause s [ Solver.pos v.(0) ];
  Solver.add_clause s [ Solver.neg v.(0); Solver.pos v.(1) ];
  Solver.add_clause s [ Solver.neg v.(1); Solver.pos v.(2) ];
  Alcotest.check outcome "sat" Solver.Sat (Solver.solve s);
  Array.iter (fun v -> Alcotest.(check bool) "forced" true (Solver.value s v)) v;
  Alcotest.(check int) "no conflicts" 0 (Solver.stats s).Solver.conflicts

let test_trivial_unsat () =
  let s, v = fresh 1 in
  Solver.add_clause s [ Solver.pos v.(0) ];
  Solver.add_clause s [ Solver.neg v.(0) ];
  Alcotest.check outcome "unsat" Solver.Unsat (Solver.solve s)

let test_empty_clause_unsat () =
  let s, _ = fresh 2 in
  Solver.add_clause s [];
  Alcotest.check outcome "unsat" Solver.Unsat (Solver.solve s)

(* A model must satisfy every clause we added (exercises learning:
   the instance needs conflicts before a model is found). *)
let test_model_satisfies_clauses () =
  let n = 9 in
  let s, v = fresh n in
  let clauses = ref [] in
  let add c =
    clauses := c :: !clauses;
    Solver.add_clause s c
  in
  (* xor-ish chains force conflicts under saved phases *)
  for i = 0 to n - 3 do
    add [ Solver.pos v.(i); Solver.pos v.(i + 1); Solver.pos v.(i + 2) ];
    add [ Solver.neg v.(i); Solver.neg v.(i + 1); Solver.neg v.(i + 2) ];
    add [ Solver.pos v.(i); Solver.neg v.(i + 1); Solver.pos v.(i + 2) ]
  done;
  Alcotest.check outcome "sat" Solver.Sat (Solver.solve s);
  let lit_true l = Solver.value s (Solver.var_of l) = (l land 1 = 0) in
  List.iter
    (fun c ->
      Alcotest.(check bool) "clause satisfied" true (List.exists lit_true c))
    !clauses

let pigeonhole s ~pigeons ~holes =
  let x =
    Array.init pigeons (fun _ ->
        Array.init holes (fun _ -> Solver.new_var s))
  in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s
      (List.init holes (fun h -> Solver.pos x.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    Card.at_most_one s (List.init pigeons (fun p -> Solver.pos x.(p).(h)))
  done

let test_pigeonhole_unsat () =
  let s = Solver.create () in
  pigeonhole s ~pigeons:5 ~holes:4;
  Alcotest.check outcome "php(5,4) unsat" Solver.Unsat (Solver.solve s);
  Alcotest.(check bool)
    "learning happened" true
    ((Solver.stats s).Solver.conflicts > 0)

let test_pigeonhole_sat () =
  let s = Solver.create () in
  pigeonhole s ~pigeons:4 ~holes:4;
  Alcotest.check outcome "php(4,4) sat" Solver.Sat (Solver.solve s)

let test_budget_unknown_then_resumable () =
  let s = Solver.create () in
  pigeonhole s ~pigeons:7 ~holes:6;
  Alcotest.check outcome "budget 1" Solver.Unknown (Solver.solve ~budget:1 s);
  (* the solver stays usable and eventually refutes *)
  Alcotest.check outcome "unbounded" Solver.Unsat (Solver.solve s)

let test_exactly_one () =
  let s, v = fresh 7 in
  Card.exactly_one s (Array.to_list (Array.map Solver.pos v));
  Alcotest.check outcome "sat" Solver.Sat (Solver.solve s);
  let trues =
    Array.fold_left (fun n x -> if Solver.value s x then n + 1 else n) 0 v
  in
  Alcotest.(check int) "one true" 1 trues;
  (* forcing two true is a contradiction *)
  Solver.add_clause s [ Solver.pos v.(2) ];
  Solver.add_clause s [ Solver.pos v.(5) ];
  Alcotest.check outcome "two forced" Solver.Unsat (Solver.solve s)

let test_at_most_k () =
  let check_k ~n ~k ~force expected =
    let s, v = fresh n in
    Card.at_most_k s ~k (Array.to_list (Array.map Solver.pos v));
    for i = 0 to force - 1 do
      Solver.add_clause s [ Solver.pos v.(i) ]
    done;
    Alcotest.check outcome
      (Printf.sprintf "n=%d k=%d force=%d" n k force)
      expected (Solver.solve s)
  in
  check_k ~n:6 ~k:3 ~force:3 Solver.Sat;
  check_k ~n:6 ~k:3 ~force:4 Solver.Unsat;
  check_k ~n:5 ~k:0 ~force:1 Solver.Unsat;
  check_k ~n:5 ~k:0 ~force:0 Solver.Sat;
  check_k ~n:4 ~k:4 ~force:4 Solver.Sat

let test_dimacs () =
  (match Dimacs.parse "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok (s, n) ->
    Alcotest.(check int) "vars" 3 n;
    Alcotest.check outcome "sat" Solver.Sat (Solver.solve s));
  (match Dimacs.parse "1 0\n-1 0\n" with
  | Error e -> Alcotest.failf "headerless: %s" e
  | Ok (s, _) -> Alcotest.check outcome "unsat" Solver.Unsat (Solver.solve s));
  match Dimacs.parse "1 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated clause accepted"

let test_deterministic () =
  let run () =
    let s = Solver.create () in
    pigeonhole s ~pigeons:4 ~holes:4;
    let o = Solver.solve ~seed:7 s in
    let st = Solver.stats s in
    let model =
      List.init (Solver.var_count s) (fun v -> Solver.value s v)
    in
    (o, st.Solver.conflicts, st.Solver.decisions, st.Solver.propagations, model)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

(* Differential: random 3-CNFs vs brute-force enumeration. *)
let test_random_vs_bruteforce =
  QCheck.Test.make ~count:150 ~name:"solver agrees with brute force"
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_range 1 30) (pair (int_range 0 7) (triple small_nat small_nat small_nat))))
    (fun (nvars, raw) ->
      let clauses =
        List.map
          (fun (signs, (a, b, c)) ->
            let lit i bit v =
              let v = v mod nvars in
              if (i lsr bit) land 1 = 0 then Solver.pos v else Solver.neg v
            in
            [ lit signs 0 a; lit signs 1 b; lit signs 2 c ])
          raw
      in
      let s = Solver.create () in
      for _ = 1 to nvars do ignore (Solver.new_var s) done;
      List.iter (Solver.add_clause s) clauses;
      let got = Solver.solve s in
      let lit_true assignment l =
        let v = Solver.var_of l in
        (assignment lsr v) land 1 = if l land 1 = 0 then 1 else 0
      in
      let satisfiable = ref false in
      for a = 0 to (1 lsl nvars) - 1 do
        if
          (not !satisfiable)
          && List.for_all (List.exists (lit_true a)) clauses
        then satisfiable := true
      done;
      got = if !satisfiable then Solver.Sat else Solver.Unsat)

let suite =
  [
    Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause_unsat;
    Alcotest.test_case "model satisfies clauses" `Quick
      test_model_satisfies_clauses;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
    Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
    Alcotest.test_case "budget unknown" `Quick test_budget_unknown_then_resumable;
    Alcotest.test_case "exactly one" `Quick test_exactly_one;
    Alcotest.test_case "at most k" `Quick test_at_most_k;
    Alcotest.test_case "dimacs" `Quick test_dimacs;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    QCheck_alcotest.to_alcotest test_random_vs_bruteforce;
  ]
