(* Tests for the streaming stack: workloads, pipelines, partitioning,
   the DVFS controller, DRIPS, and the runner. *)

open Iced_arch
module W = Iced_stream.Workload
module P = Iced_stream.Pipeline
module Part = Iced_stream.Partition
module C = Iced_stream.Controller
module D = Iced_stream.Drips
module R = Iced_stream.Runner

let cgra = Cgra.iced_6x6

(* ---------------- Workload ---------------- *)

let test_enzyme_stream () =
  let graphs = W.enzyme_graphs ~seed:1 () in
  Alcotest.(check int) "600 graphs" 600 (List.length graphs);
  List.iter
    (fun (g : W.gcn_graph) ->
      if g.vertices < 8 || g.vertices > 96 then Alcotest.failf "vertices %d" g.vertices;
      if g.edges < g.vertices then Alcotest.failf "edges %d < vertices" g.edges)
    graphs;
  let mean = W.mean_degree graphs in
  Alcotest.(check bool) "mean degree plausible (paper 32.6)" true (mean > 10.0 && mean < 70.0)

let test_enzyme_deterministic () =
  Alcotest.(check bool) "same seed same stream" true
    (W.enzyme_graphs ~seed:3 () = W.enzyme_graphs ~seed:3 ());
  Alcotest.(check bool) "different seeds differ" true
    (W.enzyme_graphs ~seed:3 () <> W.enzyme_graphs ~seed:4 ())

let test_ufl_stream () =
  let mats = W.ufl_matrices ~seed:1 () in
  Alcotest.(check int) "150 matrices" 150 (List.length mats);
  List.iter
    (fun (m : W.lu_matrix) ->
      if m.dim < 12 || m.dim > 100 then Alcotest.failf "dim %d" m.dim;
      if m.nnz < m.dim || m.nnz > m.dim * m.dim then Alcotest.failf "nnz %d" m.nnz)
    mats

(* ---------------- Pipeline ---------------- *)

let test_gcn_pipeline_shape () =
  let p = P.gcn () in
  Alcotest.(check int) "6 stages" 6 (List.length p.P.stages);
  Alcotest.(check int) "6 instances" 6 (List.length (P.instances p));
  (* aggregate appears twice *)
  let aggs =
    List.filter
      (fun (i : P.instance) -> i.P.kernel.Iced_kernels.Kernel.name = "aggregate")
      (P.instances p)
  in
  Alcotest.(check int) "aggregate twice" 2 (List.length aggs)

let test_lu_pipeline_shape () =
  let p = P.lu () in
  Alcotest.(check int) "4 stages" 4 (List.length p.P.stages);
  Alcotest.(check int) "6 kernels" 6 (List.length (P.instances p));
  let parallel = List.filter (fun s -> List.length s > 1) p.P.stages in
  Alcotest.(check int) "two parallel stages" 2 (List.length parallel)

let test_pipeline_iterations_scale () =
  let p = P.gcn () in
  let sparse = P.of_gcn_graph { W.id = 0; vertices = 30; edges = 30 } in
  let dense = P.of_gcn_graph { W.id = 1; vertices = 30; edges = 900 } in
  let agg = P.find p "aggregate.0" in
  Alcotest.(check bool) "aggregate tracks edges" true
    (agg.P.iterations dense > 10 * agg.P.iterations sparse);
  let comb = P.find p "combine" in
  Alcotest.(check int) "combine fixed per vertex-count" (comb.P.iterations sparse)
    (comb.P.iterations dense)

let test_pipeline_find () =
  let p = P.gcn () in
  Alcotest.(check bool) "find works" true ((P.find p "pooling").P.label = "pooling");
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (P.find p "nope");
       false
     with Not_found -> true)

(* ---------------- Partition ---------------- *)

let prepared =
  lazy
    (let inputs = List.map P.of_gcn_graph (W.enzyme_graphs ~seed:42 ()) in
     let profile = List.filteri (fun i _ -> i mod 12 = 0) inputs in
     match Part.prepare cgra (P.gcn ()) ~profile with
     | Ok p -> (p, inputs)
     | Error e -> failwith e)

let test_partition_allocates_all_islands () =
  let p, _ = Lazy.force prepared in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 p.Part.allocation in
  Alcotest.(check int) "all 9 islands" 9 total;
  List.iter
    (fun (label, c) ->
      if c < 1 then Alcotest.failf "%s got %d islands" label c)
    p.Part.allocation

let test_partition_island_ids_disjoint () =
  let p, _ = Lazy.force prepared in
  let all = List.concat_map snd p.Part.island_ids in
  Alcotest.(check int) "disjoint cover" 9 (List.length (List.sort_uniq compare all))

let test_partition_ii_monotone () =
  let p, _ = Lazy.force prepared in
  List.iter
    (fun (label, _) ->
      let rec check best k =
        if k > 6 then ()
        else begin
          let ii = Part.ii_for p label k in
          if ii < max_int then begin
            if ii > best then Alcotest.failf "%s II grew with more islands" label;
            check ii (k + 1)
          end
          else check best (k + 1)
        end
      in
      check max_int 1)
    p.Part.allocation

let test_partition_levels_floors () =
  let p, _ = Lazy.force prepared in
  Alcotest.(check int) "floor per instance" (List.length p.Part.allocation)
    (List.length p.Part.level_floors)

let test_partition_too_many_kernels () =
  let tiny = Cgra.make ~rows:2 ~cols:2 () in
  let inputs = List.map P.of_gcn_graph (W.enzyme_graphs ~seed:1 ~count:10 ()) in
  match Part.prepare tiny (P.gcn ()) ~profile:inputs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "6 kernels cannot fit 1 island"

let lu_prepared =
  lazy
    (let inputs = List.map P.of_lu_matrix (W.ufl_matrices ~seed:7 ()) in
     let profile = List.filteri (fun i _ -> i mod 3 = 0) inputs in
     match Part.prepare cgra (P.lu ()) ~profile with
     | Ok p -> (p, inputs)
     | Error e -> failwith e)

let test_lu_partition () =
  let p, _ = Lazy.force lu_prepared in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 p.Part.allocation in
  Alcotest.(check int) "all islands" 9 total;
  (* the heavy solvers must be mappable on their allocation *)
  List.iter
    (fun (label, count) ->
      Alcotest.(check bool)
        (label ^ " maps at its allocation")
        true
        (Part.ii_for p label count < max_int))
    p.Part.allocation

let test_lu_iced_beats_drips () =
  let p, inputs = Lazy.force lu_prepared in
  let iced = R.aggregate (R.run p R.Iced_dvfs inputs) in
  let drips = R.aggregate (R.run p R.Drips inputs) in
  Alcotest.(check bool) "LU: iced more efficient (Fig. 13)" true
    (iced.R.overall_efficiency > drips.R.overall_efficiency)

(* ---------------- Controller ---------------- *)

let test_controller_initial_levels () =
  let c = C.create ~labels:[ "a"; "b" ] () in
  Alcotest.(check bool) "starts normal" true (C.level c "a" = Dvfs.Normal);
  Alcotest.(check int) "default window" 10 (C.window c)

let feed c label time = C.observe c ~label ~busy_time:time

let test_controller_lowers_slack () =
  let c = C.create ~window:5 ~labels:[ "slow"; "fast" ] () in
  for _ = 1 to 5 do
    feed c "slow" 100.0;
    feed c "fast" 10.0;
    C.input_done c
  done;
  Alcotest.(check bool) "bottleneck stays normal" true (C.level c "slow" = Dvfs.Normal);
  Alcotest.(check bool) "slack kernel lowered" true (C.level c "fast" <> Dvfs.Normal)

let test_controller_never_lowers_bottleneck () =
  let c = C.create ~window:5 ~labels:[ "only" ] () in
  for _ = 1 to 25 do
    feed c "only" 50.0;
    C.input_done c
  done;
  Alcotest.(check bool) "sole kernel is the bottleneck" true (C.level c "only" = Dvfs.Normal)

let test_controller_restores_new_bottleneck () =
  let c = C.create ~window:5 ~labels:[ "a"; "b" ] () in
  (* phase 1: b has slack and is lowered *)
  for _ = 1 to 10 do
    feed c "a" 100.0;
    feed c "b" 10.0;
    C.input_done c
  done;
  Alcotest.(check bool) "b lowered" true (C.level c "b" <> Dvfs.Normal);
  (* phase 2: b becomes the bottleneck; controller snaps it back *)
  for _ = 1 to 5 do
    feed c "a" 10.0;
    feed c "b" 400.0;
    C.input_done c
  done;
  Alcotest.(check bool) "b restored" true (C.level c "b" = Dvfs.Normal)

let test_controller_respects_floor () =
  let c = C.create ~window:2 ~label_floors:[ ("b", Dvfs.Relax) ] ~labels:[ "a"; "b" ] () in
  for _ = 1 to 30 do
    feed c "a" 1000.0;
    feed c "b" 1.0;
    C.input_done c
  done;
  Alcotest.(check bool) "b no lower than its floor" true
    (Dvfs.at_most Dvfs.Relax (C.level c "b"))

let test_controller_window_boundary () =
  let c = C.create ~window:10 ~labels:[ "a"; "b" ] () in
  for _ = 1 to 9 do
    feed c "a" 100.0;
    feed c "b" 1.0;
    C.input_done c
  done;
  Alcotest.(check bool) "no change before the window closes" true
    (C.level c "b" = Dvfs.Normal);
  feed c "a" 100.0;
  feed c "b" 1.0;
  C.input_done c;
  Alcotest.(check bool) "adjusts on the boundary" true (C.level c "b" <> Dvfs.Normal);
  Alcotest.(check bool) "counted" true (C.adjustments c >= 1)

let test_controller_starved_kernel_keeps_level () =
  (* Regression: a kernel that produced no samples in a window used to
     read as worst = 0 and be stepped down unconditionally — then cost
     a slow window the moment its phase returned.  The decayed
     cross-window memory must speak for it instead. *)
  let c = C.create ~window:5 ~labels:[ "a"; "b" ] () in
  for _ = 1 to 5 do
    feed c "a" 100.0;
    feed c "b" 90.0;
    C.input_done c
  done;
  Alcotest.(check bool) "b near the bottleneck stays normal" true
    (C.level c "b" = Dvfs.Normal);
  (* one starved window: b's memory (90 decayed to 45, doubled to 90)
     still exceeds the 0.8 * 100 guard band *)
  for _ = 1 to 5 do
    feed c "a" 100.0;
    C.input_done c
  done;
  Alcotest.(check bool) "one starved window does not lower b" true
    (C.level c "b" = Dvfs.Normal);
  (* but a kernel that stays idle is lowered once the memory fades *)
  for _ = 1 to 20 do
    feed c "a" 100.0;
    C.input_done c
  done;
  Alcotest.(check bool) "a long-idle kernel is eventually lowered" true
    (C.level c "b" <> Dvfs.Normal)

let test_controller_settle_is_monotone () =
  let c = C.create ~window:5 ~labels:[ "a"; "b" ] () in
  (* two windows of heavy slack walk b down to Rest *)
  for _ = 1 to 10 do
    feed c "a" 400.0;
    feed c "b" 1.0;
    C.input_done c
  done;
  Alcotest.(check bool) "b reaches rest" true (C.level c "b" = Dvfs.Rest);
  (* b's work grows: at Rest the observed time crowds the bottleneck,
     so one adjustment raises it exactly far enough (one level) *)
  for _ = 1 to 5 do
    feed c "a" 400.0;
    feed c "b" 380.0;
    C.input_done c
  done;
  Alcotest.(check bool) "raised one level" true (C.level c "b" = Dvfs.Relax);
  (* the same work at Relax takes half the time and now fits with
     margin on both sides: the level is stable, no oscillation *)
  for _ = 1 to 5 do
    feed c "a" 400.0;
    feed c "b" 190.0;
    C.input_done c
  done;
  Alcotest.(check bool) "stable at relax" true (C.level c "b" = Dvfs.Relax)

(* ---------------- Drips ---------------- *)

let test_drips_conserves_islands () =
  let p, inputs = Lazy.force prepared in
  let d = D.create ~window:10 p in
  let reports = ref 0 in
  List.iteri
    (fun i input ->
      if i < 200 then begin
        List.iter
          (fun (instance : P.instance) ->
            let label = instance.P.label in
            let t = float_of_int (instance.P.iterations input) in
            D.observe d ~label ~busy_time:t)
          (P.instances p.Part.pipeline);
        D.input_done d;
        incr reports;
        let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (D.allocation d) in
        Alcotest.(check int) "9 islands always" 9 total;
        List.iter (fun (_, c) -> if c < 1 then Alcotest.fail "starved kernel") (D.allocation d)
      end)
    inputs

(* ---------------- Runner ---------------- *)

let test_runner_reports () =
  let p, inputs = Lazy.force prepared in
  let short = List.filteri (fun i _ -> i < 100) inputs in
  let reports = R.run p R.Static short in
  Alcotest.(check int) "10 windows of 10" 10 (List.length reports);
  List.iter
    (fun (w : R.window_report) ->
      if w.throughput_per_s <= 0.0 then Alcotest.fail "non-positive throughput";
      if w.power_mw <= 0.0 then Alcotest.fail "non-positive power";
      Alcotest.(check int) "10 inputs per window" 10 w.inputs)
    reports

let test_runner_static_all_normal () =
  let p, inputs = Lazy.force prepared in
  let short = List.filteri (fun i _ -> i < 30) inputs in
  List.iter
    (fun (w : R.window_report) ->
      List.iter
        (fun (_, level) -> Alcotest.(check bool) "normal" true (level = Dvfs.Normal))
        w.levels)
    (R.run p R.Static short)

let test_runner_iced_saves_energy () =
  let p, inputs = Lazy.force prepared in
  let iced = R.aggregate (R.run p R.Iced_dvfs inputs) in
  let drips = R.aggregate (R.run p R.Drips inputs) in
  Alcotest.(check bool) "ICED more efficient than DRIPS (Fig. 13)" true
    (iced.R.overall_efficiency > drips.R.overall_efficiency);
  Alcotest.(check bool) "throughput within 5% of DRIPS" true
    (iced.R.overall_throughput_per_s > 0.95 *. drips.R.overall_throughput_per_s)

let test_runner_aggregate_consistency () =
  let p, inputs = Lazy.force prepared in
  let short = List.filteri (fun i _ -> i < 50) inputs in
  let reports = R.run p R.Static short in
  let t = R.aggregate reports in
  Alcotest.(check int) "inputs counted" 50 t.R.total_inputs;
  Alcotest.(check bool) "energy positive" true (t.R.total_energy_uj > 0.0)

let test_runner_aggregate_empty_is_finite () =
  let t = R.aggregate [] in
  Alcotest.(check int) "no inputs" 0 t.R.total_inputs;
  Alcotest.(check (float 0.0)) "zero throughput, not nan" 0.0
    t.R.overall_throughput_per_s;
  Alcotest.(check (float 0.0)) "zero efficiency, not nan" 0.0 t.R.overall_efficiency

let suite =
  [
    ("workload: enzyme stream", `Quick, test_enzyme_stream);
    ("workload: deterministic", `Quick, test_enzyme_deterministic);
    ("workload: ufl stream", `Quick, test_ufl_stream);
    ("pipeline: gcn shape", `Quick, test_gcn_pipeline_shape);
    ("pipeline: lu shape", `Quick, test_lu_pipeline_shape);
    ("pipeline: data-dependent iterations", `Quick, test_pipeline_iterations_scale);
    ("pipeline: find", `Quick, test_pipeline_find);
    ("partition: allocates all islands", `Slow, test_partition_allocates_all_islands);
    ("partition: island ids disjoint", `Slow, test_partition_island_ids_disjoint);
    ("partition: II monotone in islands", `Slow, test_partition_ii_monotone);
    ("partition: floors per instance", `Slow, test_partition_levels_floors);
    ("partition: too many kernels", `Quick, test_partition_too_many_kernels);
    ("controller: initial levels", `Quick, test_controller_initial_levels);
    ("controller: lowers slack kernels", `Quick, test_controller_lowers_slack);
    ("controller: bottleneck never lowered", `Quick, test_controller_never_lowers_bottleneck);
    ("controller: restores a new bottleneck", `Quick, test_controller_restores_new_bottleneck);
    ("controller: respects compile floor", `Quick, test_controller_respects_floor);
    ("controller: window boundary", `Quick, test_controller_window_boundary);
    ("controller: starved kernel keeps its level", `Quick,
     test_controller_starved_kernel_keeps_level);
    ("controller: settle is monotone", `Quick, test_controller_settle_is_monotone);
    ("drips: conserves islands", `Slow, test_drips_conserves_islands);
    ("runner: window reports", `Slow, test_runner_reports);
    ("runner: static all normal", `Slow, test_runner_static_all_normal);
    ("runner: iced beats drips (Fig. 13)", `Slow, test_runner_iced_saves_energy);
    ("runner: aggregate consistency", `Slow, test_runner_aggregate_consistency);
    ("runner: aggregate of nothing is finite", `Quick,
     test_runner_aggregate_empty_is_finite);
    ("lu: partition feasible", `Slow, test_lu_partition);
    ("lu: iced beats drips (Fig. 13)", `Slow, test_lu_iced_beats_drips);
  ]
