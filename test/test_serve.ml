(* Tests for the iced serve daemon: protocol encode/decode round-trips
   (including hostile ids and truncated frames), the bounded queue,
   cache dedup/coalescing across domains, admission-control shedding,
   and — the load-bearing invariant — byte-identical responses between
   the one-shot path and daemons of any worker count. *)

module Protocol = Iced_serve.Protocol
module Server = Iced_serve.Server
module Bqueue = Iced_serve.Bqueue
module Cache = Iced_explore.Cache
module Space = Iced_explore.Space
module Outcome = Iced_explore.Outcome
module Campaign = Iced_campaign.Campaign
module Runner = Iced_stream.Runner
module Json = Iced_util.Json

let frame id request =
  { Protocol.id; request; deadline_ms = None; tenant = None; qos = None }

let dframe id request ms =
  { Protocol.id; request; deadline_ms = Some ms; tenant = None; qos = None }

(* the seed config plus the resilience knobs at their defaults *)
let config ~workers ~queue_depth ~cache =
  { Server.workers; queue_depth; cache; restart_budget = 8; default_deadline_ms = None }

let small_spec =
  {
    Space.fabrics = [ (4, 4) ];
    islands = [ (2, 2) ];
    spm_banks = [ 4 ];
    floors = [ Iced_arch.Dvfs.Rest ];
    unrolls = [ 1 ];
    max_iis = [ 32 ];
  }

(* ---------------- protocol round-trips ---------------- *)

let roundtrip f =
  let line = Protocol.encode_request f in
  match Protocol.decode line with
  | Ok f' -> Alcotest.(check bool) line true (f = f')
  | Error _ -> Alcotest.failf "decode rejected its own encoding: %s" line

let test_roundtrip_all_ops () =
  List.iter roundtrip
    [
      frame "a" Protocol.Ping;
      frame "" Protocol.Stats;
      frame "x" Protocol.Shutdown;
      frame "s" (Protocol.Sleep 5);
      frame "m" (Protocol.Map { point = Protocol.default_point; kernel = "fir"; backend = Iced_mapper.Backend.default });
      frame "e" (Protocol.Explore { spec = small_spec; kernels = [ "fir"; "gemm" ] });
      frame "e2" (Protocol.Explore { spec = small_spec; kernels = [] });
      frame "st"
        (Protocol.Stream { app = Campaign.Gcn; policy = Runner.Iced_dvfs; inputs = 12 });
      frame "f"
        (Protocol.Fault { app = Campaign.Lu; seeds = 2; faults = 1; inputs = 50; window = 10 });
      frame "h" Protocol.Health;
      frame "c" (Protocol.Crash { kill = false });
      frame "ck" (Protocol.Crash { kill = true });
      dframe "d" Protocol.Ping 250;
      dframe "d0" (Protocol.Map { point = Protocol.default_point; kernel = "fir"; backend = Iced_mapper.Backend.default }) 0;
      frame "mb"
        (Protocol.Map
           { point = Protocol.default_point; kernel = "fir"; backend = Iced_mapper.Backend.sa });
      frame "mp"
        (Protocol.Map
           {
             point = Protocol.default_point;
             kernel = "fir";
             backend = Iced_mapper.Backend.pathfinder;
           });
    ]

let test_map_backend_field () =
  (* the default backend stays implicit on the wire (old frames encode
     byte-identically); explicit backends round-trip; junk is strictly
     rejected *)
  let default_frame =
    frame "m"
      (Protocol.Map
         { point = Protocol.default_point; kernel = "fir"; backend = Iced_mapper.Backend.default })
  in
  let contains_sub needle hay =
    let n = String.length needle in
    let rec scan i = i + n <= String.length hay && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  let line = Protocol.encode_request default_frame in
  Alcotest.(check bool) "default backend not on the wire" false
    (contains_sub "backend" line);
  (match Protocol.decode line with
  | Ok f -> Alcotest.(check bool) "decodes to default" true (f = default_frame)
  | Error _ -> Alcotest.fail "default map frame rejected");
  let sa_line = "{\"id\":\"m\",\"op\":\"map\",\"kernel\":\"fir\",\"backend\":\"sa:9\"}" in
  (match Protocol.decode sa_line with
  | Ok { Protocol.request = Protocol.Map { backend; _ }; _ } ->
    Alcotest.(check string) "seeded sa parses" "sa:9" (Iced_mapper.Backend.to_string backend)
  | Ok _ -> Alcotest.fail "decoded to the wrong op"
  | Error _ -> Alcotest.fail "sa:9 map frame rejected")

let test_roundtrip_hostile_ids () =
  List.iter
    (fun id -> roundtrip (frame id Protocol.Ping))
    [ "quote\"s"; "back\\slash"; "new\nline"; "tab\tand\x01ctrl"; "unicode \xc3\xa9" ]

let expect_malformed line =
  match Protocol.decode line with
  | Error (Protocol.Malformed _) -> ()
  | Ok _ -> Alcotest.failf "accepted malformed %S" line
  | Error (Protocol.Invalid _) -> Alcotest.failf "Invalid rather than Malformed: %S" line

let expect_invalid line ~id =
  match Protocol.decode line with
  | Error (Protocol.Invalid e) -> Alcotest.(check string) line id e.id
  | Ok _ -> Alcotest.failf "accepted invalid %S" line
  | Error (Protocol.Malformed _) -> Alcotest.failf "Malformed rather than Invalid: %S" line

let test_decode_malformed () =
  List.iter expect_malformed
    [
      "";
      "{";
      "{\"id\":\"a\",\"op\":\"pi";  (* truncated mid-string *)
      "{\"op\":\"ping\"} extra";  (* trailing garbage *)
      "{\"op\":\"ping\",}";
      "\"op";
      "{\"op\":\"ping\"\x01}";  (* raw control byte *)
    ]

let test_decode_invalid () =
  expect_invalid "{\"id\":\"a\",\"op\":\"fly\"}" ~id:"a";
  expect_invalid "{\"id\":\"a\"}" ~id:"a";
  expect_invalid "{\"id\":7,\"op\":\"ping\"}" ~id:"";
  expect_invalid "42" ~id:"";
  expect_invalid "{\"id\":\"s\",\"op\":\"sleep\"}" ~id:"s";
  expect_invalid "{\"id\":\"m\",\"op\":\"map\",\"kernel\":\"fir\",\"point\":\"bogus\"}"
    ~id:"m";
  expect_invalid "{\"id\":\"m\",\"op\":\"map\",\"kernel\":\"fir\",\"backend\":\"warp\"}"
    ~id:"m";
  expect_invalid "{\"id\":\"m\",\"op\":\"map\",\"kernel\":\"fir\",\"backend\":7}" ~id:"m";
  expect_invalid "{\"id\":\"st\",\"op\":\"stream\",\"app\":\"gcn\",\"policy\":\"warp\"}"
    ~id:"st";
  expect_invalid "{\"id\":\"f\",\"op\":\"fault\",\"seeds\":0}" ~id:"f";
  expect_invalid "{\"id\":\"d\",\"op\":\"ping\",\"deadline_ms\":-1}" ~id:"d";
  expect_invalid "{\"id\":\"d\",\"op\":\"ping\",\"deadline_ms\":\"soon\"}" ~id:"d"

let test_tenant_qos_fields () =
  (* explicit tenant/qos round-trip on any op *)
  roundtrip { (frame "t" Protocol.Ping) with Protocol.tenant = Some "acme"; qos = Some "premium" };
  roundtrip { (dframe "t2" (Protocol.Sleep 1) 100) with Protocol.tenant = Some "b u" };
  roundtrip { (frame "t3" Protocol.Stats) with Protocol.qos = Some "batch" };
  (* absent fields stay off the wire entirely, so pre-tenancy frames
     encode byte-identically *)
  let contains_sub needle hay =
    let n = String.length needle in
    let rec scan i = i + n <= String.length hay && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  let line = Protocol.encode_request (frame "p" Protocol.Ping) in
  Alcotest.(check bool) "absent tenant not on the wire" false (contains_sub "tenant" line);
  Alcotest.(check bool) "absent qos not on the wire" false (contains_sub "qos" line);
  (* hand-written field order decodes too, and qos is canonicalised *)
  (match Protocol.decode "{\"qos\":\"premium\",\"op\":\"ping\",\"tenant\":\"a\",\"id\":\"q\"}" with
  | Ok f ->
    Alcotest.(check (option string)) "tenant" (Some "a") f.Protocol.tenant;
    Alcotest.(check (option string)) "qos" (Some "premium") f.Protocol.qos
  | Error _ -> Alcotest.fail "tenant-tagged ping rejected");
  (* strict validation: unknown class, empty or mistyped tenant *)
  expect_invalid "{\"id\":\"q\",\"op\":\"ping\",\"qos\":\"platinum\"}" ~id:"q";
  expect_invalid "{\"id\":\"q\",\"op\":\"ping\",\"qos\":7}" ~id:"q";
  expect_invalid "{\"id\":\"q\",\"op\":\"ping\",\"tenant\":\"\"}" ~id:"q";
  expect_invalid "{\"id\":\"q\",\"op\":\"ping\",\"tenant\":7}" ~id:"q"

let test_invalid_responses_are_json () =
  List.iter
    (fun line ->
      match Protocol.decode line with
      | Ok _ -> Alcotest.failf "expected a decode error for %S" line
      | Error e -> (
        match Json.parse (Protocol.response_invalid e) with
        | Error pe ->
          Alcotest.failf "unparseable invalid reply: %s" (Json.error_to_string pe)
        | Ok doc ->
          Alcotest.(check (option string))
            "status" (Some "invalid")
            (Option.bind (Json.member "status" doc) Json.get_string)))
    [ "{\"op\""; "{\"id\":\"we\\\"ird\",\"op\":\"fly\"}"; "nope" ]

let prop_decode_total =
  QCheck.Test.make ~count:500 ~name:"decode never raises" QCheck.string (fun s ->
      match Protocol.decode s with Ok _ | Error _ -> true)

(* ---------------- bounded queue ---------------- *)

let test_bqueue_bounds () =
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "push 3 shed" false (Bqueue.try_push q 3);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "push 4" true (Bqueue.try_push q 4);
  Bqueue.close q;
  Alcotest.(check bool) "push after close" false (Bqueue.try_push q 5);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "drains 4" (Some 4) (Bqueue.pop q);
  Alcotest.(check (option int)) "then closed" None (Bqueue.pop q);
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Bqueue.create: capacity must be >= 1") (fun () ->
      ignore (Bqueue.create ~capacity:0))

(* ---------------- cache dedup and coalescing ---------------- *)

let test_find_or_store_single_evaluation () =
  let cache = Cache.in_memory () in
  let evals = Atomic.make 0 in
  let eval () =
    Atomic.incr evals;
    Unix.sleepf 0.05;
    Outcome.Failed "computed-once"
  in
  let domains =
    List.init 8 (fun _ ->
        Domain.spawn (fun () -> Cache.find_or_store cache ~key:"k" eval))
  in
  let results = List.map Domain.join domains in
  Alcotest.(check int) "one evaluation" 1 (Atomic.get evals);
  Alcotest.(check int) "one miss" 1 (Cache.misses cache);
  List.iter
    (fun r ->
      Alcotest.(check bool) "same status" true (r = Outcome.Failed "computed-once"))
    results

let test_timed_out_not_cached () =
  let cache = Cache.in_memory () in
  let calls = ref 0 in
  let eval () =
    incr calls;
    Outcome.Timed_out
  in
  ignore (Cache.find_or_store cache ~key:"t" eval);
  ignore (Cache.find_or_store cache ~key:"t" eval);
  Alcotest.(check int) "timeouts re-evaluate" 2 !calls;
  Alcotest.(check int) "never stored" 0 (Cache.size cache)

(* ---------------- admission control ---------------- *)

let test_shed_overloaded () =
  let replies = ref [] in
  let mu = Mutex.create () in
  let respond line ~latency_s:_ =
    Mutex.lock mu;
    replies := line :: !replies;
    Mutex.unlock mu
  in
  let t =
    Server.create ~respond
      (config ~workers:1 ~queue_depth:1 ~cache:(Cache.in_memory ()))
  in
  Alcotest.(check bool) "first accepted" true
    (Server.submit t (frame "busy" (Protocol.Sleep 150)));
  (* wait for the worker to pop it so the next submit fills the queue *)
  while Server.queue_length t > 0 do
    Unix.sleepf 0.002
  done;
  Alcotest.(check bool) "second queued" true
    (Server.submit t (frame "queued" (Protocol.Sleep 1)));
  Alcotest.(check bool) "third shed" false (Server.submit t (frame "shed-me" Protocol.Ping));
  Server.shutdown t;
  Alcotest.(check int) "shed count" 1 (Server.shed t);
  Alcotest.(check int) "all replies emitted" 3 (Server.served t);
  let overloaded =
    List.filter
      (fun line ->
        match Json.parse line with
        | Ok doc ->
          Option.bind (Json.member "status" doc) Json.get_string = Some "overloaded"
          && Option.bind (Json.member "id" doc) Json.get_string = Some "shed-me"
        | Error _ -> false)
      !replies
  in
  Alcotest.(check int) "one overloaded reply" 1 (List.length overloaded)

(* ---------------- byte identity: one-shot vs pool ---------------- *)

let no_stats ~id = Protocol.response_error ~id "stats: not under test"

let identity_requests =
  let relax = { Protocol.default_point with Space.floor = Iced_arch.Dvfs.Relax } in
  [
    frame "01" Protocol.Ping;
    frame "02" (Protocol.Map { point = Protocol.default_point; kernel = "fir"; backend = Iced_mapper.Backend.default });
    frame "03" (Protocol.Map { point = Protocol.default_point; kernel = "fir"; backend = Iced_mapper.Backend.default });
    frame "04" (Protocol.Map { point = Protocol.default_point; kernel = "mvt"; backend = Iced_mapper.Backend.default });
    frame "05" (Protocol.Map { point = relax; kernel = "fir"; backend = Iced_mapper.Backend.default });
    frame "06" (Protocol.Map { point = Protocol.default_point; kernel = "nope"; backend = Iced_mapper.Backend.default });
    frame "07" (Protocol.Sleep 1);
    frame "08" (Protocol.Explore { spec = small_spec; kernels = [ "fir"; "mvt" ] });
    frame "09" Protocol.Ping;
    (* failure replies are part of the byte-identity contract too *)
    frame "10" (Protocol.Crash { kill = false });
    frame "11" (Protocol.Crash { kill = true });
    dframe "12" (Protocol.Sleep 50) 0;
    (* cross-backend frames: the seeded SA and Pathfinder paths must be
       as deterministic across worker counts as the default pair *)
    frame "13"
      (Protocol.Map
         { point = Protocol.default_point; kernel = "fir"; backend = Iced_mapper.Backend.sa });
    frame "14"
      (Protocol.Map
         {
           point = Protocol.default_point;
           kernel = "fir";
           backend = Iced_mapper.Backend.pathfinder;
         });
  ]

let oneshot_responses () =
  let cache = Cache.in_memory () in
  List.map (Server.handle ~cache ~stats:no_stats) identity_requests

let pool_responses workers =
  let acc = ref [] in
  let mu = Mutex.create () in
  let respond line ~latency_s:_ =
    Mutex.lock mu;
    acc := line :: !acc;
    Mutex.unlock mu
  in
  let t =
    Server.create ~respond (config ~workers ~queue_depth:64 ~cache:(Cache.in_memory ()))
  in
  List.iter (fun f -> ignore (Server.submit t f)) identity_requests;
  Server.shutdown t;
  !acc

let test_pool_byte_identity () =
  let expected = List.sort compare (oneshot_responses ()) in
  List.iter
    (fun workers ->
      Alcotest.(check (list string))
        (Printf.sprintf "%d workers" workers)
        expected
        (List.sort compare (pool_responses workers)))
    [ 1; 4 ]

let test_persistent_cache_identity () =
  (* a response computed fresh and one replayed from the persistent
     tier must render byte-identically: %.17g round-trips exactly *)
  let path = Filename.temp_file "iced-serve-cache" ".jsonl" in
  let req = frame "m" (Protocol.Map { point = Protocol.default_point; kernel = "fft"; backend = Iced_mapper.Backend.default }) in
  let once () =
    let cache = Cache.open_file path in
    let r = Server.handle ~cache ~stats:no_stats req in
    Cache.close cache;
    r
  in
  let fresh = once () in
  let replayed = once () in
  Sys.remove path;
  Alcotest.(check string) "fresh = replayed" fresh replayed

(* ---------------- the channel transport ---------------- *)

let test_serve_channels_pipe () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        let reason =
          Server.serve_channels
            (config ~workers:2 ~queue_depth:8 ~cache:(Cache.in_memory ()))
            ic oc
        in
        flush oc;
        reason)
  in
  let client_oc = Unix.out_channel_of_descr req_w in
  let client_ic = Unix.in_channel_of_descr resp_r in
  List.iter
    (fun line ->
      output_string client_oc line;
      output_char client_oc '\n')
    [
      "{\"id\":\"a\",\"op\":\"ping\"}";
      "this is not json";
      "{\"id\":\"b\",\"op\":\"ping\"}";
      "{\"id\":\"z\",\"op\":\"shutdown\"}";
    ];
  flush client_oc;
  let responses = List.init 4 (fun _ -> input_line client_ic) in
  let reason = Domain.join server in
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ req_r; req_w; resp_r; resp_w ];
  Alcotest.(check bool) "stopped on shutdown" true (reason = Server.Requested);
  let sorted = List.sort compare responses in
  Alcotest.(check (list string))
    "response lines"
    (List.sort compare
       [
         "{\"id\":\"a\",\"status\":\"ok\",\"op\":\"ping\"}";
         "{\"status\":\"invalid\",\"error\":\"parse error: expected true at byte 0\"}";
         "{\"id\":\"b\",\"status\":\"ok\",\"op\":\"ping\"}";
         "{\"id\":\"z\",\"status\":\"ok\",\"op\":\"shutdown\"}";
       ])
    sorted

(* ---------------- deadlines ---------------- *)

let test_deadline_pre_expired () =
  let cache = Cache.in_memory () in
  Alcotest.(check string) "ping times out"
    (Protocol.response_timeout ~id:"d0" ~op:"ping")
    (Server.handle ~cache ~stats:no_stats (dframe "d0" Protocol.Ping 0));
  let rm =
    Server.handle ~cache ~stats:no_stats
      (dframe "dm" (Protocol.Map { point = Protocol.default_point; kernel = "fir"; backend = Iced_mapper.Backend.default }) 0)
  in
  match Json.parse rm with
  | Error e -> Alcotest.failf "unparseable map timeout: %s" (Json.error_to_string e)
  | Ok doc ->
    Alcotest.(check (option string))
      "map timeout status" (Some "timeout")
      (Option.bind (Json.member "status" doc) Json.get_string);
    Alcotest.(check (option string))
      "map timeout echoes kernel" (Some "fir")
      (Option.bind (Json.member "kernel" doc) Json.get_string)

let test_deadline_mid_sleep () =
  (* the sleep is cut at the deadline, not run to completion *)
  let cache = Cache.in_memory () in
  let t0 = Unix.gettimeofday () in
  let r = Server.handle ~cache ~stats:no_stats (dframe "ds" (Protocol.Sleep 5_000) 60) in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check string) "sleep timeout"
    (Protocol.response_timeout ~id:"ds" ~op:"sleep")
    r;
  Alcotest.(check bool) "returned well before the nominal sleep" true (elapsed < 2.0)

let test_default_deadline_applies () =
  (* a frame with no deadline of its own inherits the config default *)
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let writer = Unix.out_channel_of_descr req_w in
  output_string writer "{\"id\":\"s\",\"op\":\"sleep\",\"ms\":5000}\n";
  close_out writer;
  let cfg =
    { (config ~workers:1 ~queue_depth:4 ~cache:(Cache.in_memory ())) with
      Server.default_deadline_ms = Some 40;
    }
  in
  let reason = Server.serve_fds ~once:true cfg req_r resp_w in
  Unix.close resp_w;
  let ic = Unix.in_channel_of_descr resp_r in
  let line = input_line ic in
  close_in ic;
  Unix.close req_r;
  Alcotest.(check bool) "eof" true (reason = Server.Eof);
  Alcotest.(check string) "sheds at the default deadline"
    (Protocol.response_timeout ~id:"s" ~op:"sleep")
    line

(* ---------------- supervision ---------------- *)

let test_exception_barrier () =
  (* a raising handler yields a structured reply with a stable
     fingerprint, and the same bytes on every invocation *)
  let cache = Cache.in_memory () in
  let r1 = Server.handle ~cache ~stats:no_stats (frame "c" (Protocol.Crash { kill = false })) in
  let r2 = Server.handle ~cache ~stats:no_stats (frame "c" (Protocol.Crash { kill = false })) in
  Alcotest.(check string) "stable bytes" r1 r2;
  Alcotest.(check string) "structured reply"
    (Protocol.response_internal_error ~id:"c" ~op:"crash"
       ~fingerprint:(Server.fingerprint Server.Chaos_failure))
    r1;
  (* in one-shot mode even a kill is absorbed by the barrier *)
  Alcotest.(check string) "kill absorbed when catch_kill"
    (Protocol.response_internal_error ~id:"k" ~op:"crash"
       ~fingerprint:(Server.fingerprint Server.Worker_kill))
    (Server.handle ~cache ~stats:no_stats (frame "k" (Protocol.Crash { kill = true })))

let test_supervision_restart_budget () =
  let acc = ref [] in
  let mu = Mutex.create () in
  let respond line ~latency_s:_ =
    Mutex.lock mu;
    acc := line :: !acc;
    Mutex.unlock mu
  in
  let t =
    Server.create ~respond
      {
        Server.workers = 1;
        queue_depth = 8;
        cache = Cache.in_memory ();
        restart_budget = 1;
        default_deadline_ms = None;
      }
  in
  (* first kill: absorbed, the worker restarts and keeps serving *)
  ignore (Server.submit t (frame "k1" (Protocol.Crash { kill = true })));
  Server.drain t;
  Alcotest.(check int) "one restart" 1 (Server.restarts t);
  Alcotest.(check int) "still alive" 1 (Server.alive t);
  ignore (Server.submit t (frame "p" Protocol.Ping));
  Server.drain t;
  (* second kill: budget exhausted, the worker retires *)
  ignore (Server.submit t (frame "k2" (Protocol.Crash { kill = true })));
  Server.drain t;
  Alcotest.(check int) "budget spent" 2 (Server.restarts t);
  Alcotest.(check int) "worker retired" 0 (Server.alive t);
  Alcotest.(check bool) "further submits refused" false
    (Server.submit t (frame "late" Protocol.Ping));
  Server.shutdown t;
  let expect_kill id =
    Protocol.response_internal_error ~id ~op:"crash"
      ~fingerprint:(Server.fingerprint Server.Worker_kill)
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " answered") true (List.mem (expect_kill id) !acc))
    [ "k1"; "k2" ];
  Alcotest.(check bool) "work between kills still served" true
    (List.mem "{\"id\":\"p\",\"status\":\"ok\",\"op\":\"ping\"}" !acc)

(* ---------------- health ---------------- *)

let member_obj name doc =
  match Json.member name doc with
  | Some (Json.Obj _ as o) -> o
  | _ -> Alcotest.failf "missing object %S" name

let test_health_reply_shape () =
  let acc = ref [] in
  let mu = Mutex.create () in
  let respond line ~latency_s:_ =
    Mutex.lock mu;
    acc := line :: !acc;
    Mutex.unlock mu
  in
  let t =
    Server.create ~respond (config ~workers:2 ~queue_depth:8 ~cache:(Cache.in_memory ()))
  in
  ignore (Server.submit t (frame "h" Protocol.Health));
  Server.shutdown t;
  let line =
    List.find
      (fun line ->
        match Json.parse line with
        | Ok doc -> Option.bind (Json.member "op" doc) Json.get_string = Some "health"
        | Error _ -> false)
      !acc
  in
  match Json.parse line with
  | Error e -> Alcotest.failf "unparseable health: %s" (Json.error_to_string e)
  | Ok doc ->
    Alcotest.(check (option bool))
      "healthy" (Some true)
      (Option.bind (Json.member "healthy" doc) Json.get_bool);
    let workers = member_obj "workers" doc in
    Alcotest.(check (option int))
      "workers.total" (Some 2)
      (Option.bind (Json.member "total" workers) Json.get_int);
    Alcotest.(check (option int))
      "workers.restart_budget" (Some 8)
      (Option.bind (Json.member "restart_budget" workers) Json.get_int);
    let queue = member_obj "queue" doc in
    Alcotest.(check (option int))
      "queue.depth" (Some 8)
      (Option.bind (Json.member "depth" queue) Json.get_int);
    let cache = member_obj "cache" doc in
    Alcotest.(check (option string))
      "cache.tier" (Some "memory")
      (Option.bind (Json.member "tier" cache) Json.get_string)

(* ---------------- transport stop and torn frames ---------------- *)

let test_serve_fds_stop_preset () =
  (* a stop predicate that already holds interrupts before any read *)
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let reason =
    Server.serve_fds
      ~stop:(fun () -> true)
      (config ~workers:1 ~queue_depth:4 ~cache:(Cache.in_memory ()))
      req_r resp_w
  in
  List.iter Unix.close [ req_r; req_w; resp_r; resp_w ];
  Alcotest.(check bool) "stopped" true (reason = Server.Stopped)

let test_torn_final_line_discarded () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let writer = Unix.out_channel_of_descr req_w in
  output_string writer "{\"id\":\"a\",\"op\":\"ping\"}\n{\"id\":\"b\",\"op\":\"pi";
  close_out writer;
  let reason =
    Server.serve_fds ~once:true
      (config ~workers:1 ~queue_depth:4 ~cache:(Cache.in_memory ()))
      req_r resp_w
  in
  Unix.close resp_w;
  let ic = Unix.in_channel_of_descr resp_r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Unix.close req_r;
  Alcotest.(check bool) "eof" true (reason = Server.Eof);
  Alcotest.(check (list string))
    "only the complete frame is answered"
    [ "{\"id\":\"a\",\"status\":\"ok\",\"op\":\"ping\"}" ]
    (List.rev !lines)

(* ---------------- stats ---------------- *)

let test_stats_reply_shape () =
  let acc = ref [] in
  let mu = Mutex.create () in
  let respond line ~latency_s:_ =
    Mutex.lock mu;
    acc := line :: !acc;
    Mutex.unlock mu
  in
  let t =
    Server.create ~respond (config ~workers:2 ~queue_depth:8 ~cache:(Cache.in_memory ()))
  in
  ignore (Server.submit t (frame "p1" Protocol.Ping));
  ignore
    (Server.submit t
       { (frame "p2" Protocol.Ping) with Protocol.tenant = Some "acme"; qos = Some "batch" });
  Server.drain t;
  ignore (Server.submit t (frame "s1" Protocol.Stats));
  Server.shutdown t;
  let stats_line =
    List.find
      (fun line ->
        match Json.parse line with
        | Ok doc -> Option.bind (Json.member "op" doc) Json.get_string = Some "stats"
        | Error _ -> false)
      !acc
  in
  match Json.parse stats_line with
  | Error e -> Alcotest.failf "unparseable stats: %s" (Json.error_to_string e)
  | Ok doc ->
    let int_member name =
      match Option.bind (Json.member name doc) Json.get_int with
      | Some v -> v
      | None -> Alcotest.failf "stats reply lacks %S: %s" name stats_line
    in
    Alcotest.(check int) "workers" 2 (int_member "workers");
    Alcotest.(check int) "queue_depth" 8 (int_member "queue_depth");
    Alcotest.(check int) "shed" 0 (int_member "shed");
    Alcotest.(check bool) "served >= 1" true (int_member "served" >= 1);
    (match Json.member "cache" doc with
    | Some (Json.Obj _) -> ()
    | _ -> Alcotest.fail "stats reply lacks a cache object");
    (* counters are process-global, so earlier tests may have bumped
       them — assert shape, not values *)
    (let failures = member_obj "failures" doc in
     List.iter
       (fun name ->
         match Option.bind (Json.member name failures) Json.get_int with
         | Some v -> Alcotest.(check bool) name true (v >= 0)
         | None -> Alcotest.failf "failures object lacks %S" name)
       [ "internal_errors"; "worker_restarts"; "deadline_expired"; "cache_recoveries" ]);
    (match Json.member "latency" doc with
    | Some (Json.Obj _) | Some Json.Null -> ()
    | _ -> Alcotest.fail "stats reply lacks a latency field");
    (* the tenant-tagged ping above must surface a per-tenant SLO entry
       (metrics are process-global, so other tenants may appear too) *)
    match Json.member "tenants" doc with
    | Some (Json.Arr entries) ->
      let ids =
        List.filter_map (fun e -> Option.bind (Json.member "tenant" e) Json.get_string) entries
      in
      Alcotest.(check bool) "acme listed in tenants" true (List.mem "acme" ids)
    | _ -> Alcotest.fail "stats reply lacks a tenants array"

let suite =
  [
    ("protocol roundtrip, all ops", `Quick, test_roundtrip_all_ops);
    ("protocol roundtrip, hostile ids", `Quick, test_roundtrip_hostile_ids);
    ("decode rejects malformed frames", `Quick, test_decode_malformed);
    ("decode rejects invalid requests", `Quick, test_decode_invalid);
    ("map backend field: implicit default, strict parse", `Quick, test_map_backend_field);
    ("tenant/qos fields: implicit absent, strict parse", `Quick, test_tenant_qos_fields);
    ("invalid replies are JSON", `Quick, test_invalid_responses_are_json);
    QCheck_alcotest.to_alcotest prop_decode_total;
    ("bqueue bounds and close", `Quick, test_bqueue_bounds);
    ("find_or_store evaluates once", `Quick, test_find_or_store_single_evaluation);
    ("timeouts are never cached", `Quick, test_timed_out_not_cached);
    ("full queue sheds with overloaded", `Quick, test_shed_overloaded);
    ("pool responses = one-shot bytes", `Quick, test_pool_byte_identity);
    ("persistent tier replays identical bytes", `Quick, test_persistent_cache_identity);
    ("serve_channels over a pipe", `Quick, test_serve_channels_pipe);
    ("stats reply shape", `Quick, test_stats_reply_shape);
    ("pre-expired deadlines shed without running", `Quick, test_deadline_pre_expired);
    ("deadlines cut sleeps short", `Quick, test_deadline_mid_sleep);
    ("config default deadline applies", `Quick, test_default_deadline_applies);
    ("exception barrier yields stable fingerprints", `Quick, test_exception_barrier);
    ("supervisor restarts within budget then retires", `Quick, test_supervision_restart_budget);
    ("health reply shape", `Quick, test_health_reply_shape);
    ("stop predicate interrupts serve_fds", `Quick, test_serve_fds_stop_preset);
    ("torn final line is discarded", `Quick, test_torn_final_line_discarded);
  ]
