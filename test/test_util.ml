(* Unit and property tests for Iced_util: Rng, Stats, Heap, Table. *)

open Iced_util

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 32 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b)

let test_rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let seq r = List.init 16 (fun _ -> Rng.int r 1_000_000) in
  Alcotest.(check bool) "different seeds diverge" true (seq a <> seq b)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of range: %d" v
  done

let test_rng_int_in () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "Rng.int_in out of range: %d" v
  done

let test_rng_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "Rng.float out of range: %f" v
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let a = List.init 8 (fun _ -> Rng.int parent 100) in
  let b = List.init 8 (fun _ -> Rng.int child 100) in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_rng_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose r []))

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, items) ->
      let r = Rng.create seed in
      let shuffled = Rng.shuffle r items in
      List.sort compare shuffled = List.sort compare items)

(* ---------------- Stats ---------------- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ])

let test_stats_mean_empty () =
  Alcotest.(check bool) "mean [] = nan" true (Float.is_nan (Stats.mean []))

let test_stats_geomean () = check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_stats_geomean_invalid () =
  Alcotest.check_raises "non-positive sample"
    (Invalid_argument "Stats.geomean: non-positive sample") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_stddev () =
  check_float "stddev of constant" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  check_float "stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_percentile () =
  check_float "p0" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  check_float "p100" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ]);
  check_float "p50" 2.0 (Stats.percentile 50.0 [ 3.0; 1.0; 2.0 ]);
  check_float "interpolated" 1.5 (Stats.percentile 25.0 [ 1.0; 2.0; 3.0 ])

let test_stats_minmax () =
  check_float "min" (-2.0) (Stats.minimum [ 3.0; -2.0; 1.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; -2.0; 1.0 ])

let test_ratio_series () =
  Alcotest.(check (list (float 1e-9)))
    "elementwise" [ 2.0; 3.0 ]
    (Stats.ratio_series [ 4.0; 9.0 ] [ 2.0; 3.0 ]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Stats.ratio_series: length mismatch")
    (fun () -> ignore (Stats.ratio_series [ 1.0 ] []))

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min..max" ~count:200
    QCheck.(pair (float_bound_inclusive 100.0) (list_of_size Gen.(1 -- 20) (float_bound_inclusive 50.0)))
    (fun (p, samples) ->
      let v = Stats.percentile p samples in
      v >= Stats.minimum samples -. 1e-9 && v <= Stats.maximum samples +. 1e-9)

(* ---------------- Heap ---------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun items ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p ()) items;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, ()) -> drain (p :: acc)
      in
      drain [] = List.sort compare items)

let test_heap_clear () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Alcotest.(check int) "size 0" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  (* the heap stays usable after a clear *)
  List.iter (fun p -> Heap.push h p p) [ 9; 4 ];
  Alcotest.(check bool) "min after refill" true (Heap.pop h = Some (4, 4))

let test_heap_with_capacity () =
  let h = Heap.with_capacity ~dummy:0 8 in
  Alcotest.(check bool) "starts empty" true (Heap.is_empty h);
  (* push past the preallocated capacity: it must grow transparently *)
  for p = 16 downto 1 do
    Heap.push h p p
  done;
  Alcotest.(check int) "holds all entries" 16 (Heap.size h);
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
  in
  Alcotest.(check (list int)) "sorted" (List.init 16 (fun i -> i + 1)) (drain [])

(* Model check: a heap interleaving pushes, pops, and clears behaves
   exactly like a sorted list under the same script. *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap matches sorted-list model (push/pop/clear)" ~count:300
    QCheck.(list (pair (int_bound 2) small_int))
    (fun script ->
      let h = Heap.with_capacity ~dummy:0 4 in
      let model = ref [] in
      let log_h = ref [] and log_m = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
            Heap.push h v v;
            model := List.sort compare (v :: !model)
          | 1 ->
            (match Heap.pop h with
            | Some (p, _) -> log_h := p :: !log_h
            | None -> log_h := min_int :: !log_h);
            (match !model with
            | m :: rest ->
              log_m := m :: !log_m;
              model := rest
            | [] -> log_m := min_int :: !log_m)
          | _ ->
            Heap.clear h;
            model := [])
        script;
      !log_h = !log_m && Heap.size h = List.length !model)

(* ---------------- Fnv ---------------- *)

(* Digest pinning: these exact values are what makes persisted explore
   cache keys and seeded fault campaigns stable across releases.  The
   reference digests come from the published FNV-1a 64-bit test
   vectors. *)
let test_fnv_pinned_digests () =
  let hex s = Fnv.to_hex (Fnv.hash_string s) in
  Alcotest.(check string) "empty string" "cbf29ce484222325" (hex "");
  Alcotest.(check string) "\"a\"" "af63dc4c8601ec8c" (hex "a");
  Alcotest.(check string) "\"foobar\"" "85944171f73967e8" (hex "foobar")

let test_fnv_constants () =
  Alcotest.(check string) "offset basis" "cbf29ce484222325" (Fnv.to_hex Fnv.offset_basis);
  Alcotest.(check string) "prime" "00000100000001b3" (Fnv.to_hex Fnv.prime)

let test_fnv_string_matches_bytes () =
  let s = "iced-dvfs" in
  let folded = String.fold_left Fnv.byte Fnv.offset_basis s in
  Alcotest.(check string) "string = fold byte"
    (Fnv.to_hex folded)
    (Fnv.to_hex (Fnv.string Fnv.offset_basis s))

let test_fnv_int_order_sensitive () =
  let a = Fnv.int (Fnv.int Fnv.offset_basis 1) 2 in
  let b = Fnv.int (Fnv.int Fnv.offset_basis 2) 1 in
  Alcotest.(check bool) "order matters" true (a <> b)

let prop_fnv_hex_roundtrip =
  QCheck.Test.make ~name:"fnv hex is 16 lowercase hex digits" ~count:200
    QCheck.(string_gen_of_size Gen.(0 -- 64) Gen.printable)
    (fun s ->
      let h = Fnv.to_hex (Fnv.hash_string s) in
      String.length h = 16
      && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) h)

(* ---------------- Table ---------------- *)

let test_table_render () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has title" true (String.length rendered > 0);
  Alcotest.(check bool) "contains cell"
    true
    (String.length rendered > 10 && String.contains rendered '1')

let test_table_arity () =
  let t = Table.create ~title:"t" ~columns:[ "a" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_fmt_float () =
  Alcotest.(check string) "integer" "3" (Table.fmt_float 3.0);
  Alcotest.(check string) "nan" "-" (Table.fmt_float nan)

(* ---------------- Json ---------------- *)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s (Json.error_to_string e)

let test_json_scalars () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse_ok " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (parse_ok "42" = Json.Num 42.0);
  Alcotest.(check bool) "negative exp" true (parse_ok "-1.5e3" = Json.Num (-1500.0));
  Alcotest.(check bool) "string" true (parse_ok "\"hi\"" = Json.Str "hi")

let test_json_escapes () =
  Alcotest.(check bool) "simple escapes" true
    (parse_ok "\"a\\n\\t\\\\\\\"b\\/\"" = Json.Str "a\n\t\\\"b/");
  Alcotest.(check bool) "\\u BMP to UTF-8" true
    (parse_ok "\"caf\\u00e9\"" = Json.Str "caf\xc3\xa9");
  Alcotest.(check bool) "surrogate pair" true
    (parse_ok "\"\\ud83d\\ude00\"" = Json.Str "\xf0\x9f\x98\x80")

let test_json_nested () =
  let doc = parse_ok "{\"a\": [1, {\"b\": null}, \"x\"], \"n\": -0.5}" in
  (match Option.bind (Json.member "a" doc) Json.get_list with
  | Some [ Json.Num 1.0; Json.Obj [ ("b", Json.Null) ]; Json.Str "x" ] -> ()
  | _ -> Alcotest.fail "nested array structure");
  Alcotest.(check (option (float 1e-12))) "number member" (Some (-0.5))
    (Option.bind (Json.member "n" doc) Json.get_number);
  Alcotest.(check (option int)) "get_int rejects fractions" None
    (Option.bind (Json.member "n" doc) Json.get_int)

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [
      "";
      "{";
      "[1,2";
      "\"abc";  (* truncated string *)
      "\"\\u12";  (* truncated escape *)
      "\"\\x\"";  (* unknown escape *)
      "\"\\ud800\"";  (* lone surrogate *)
      "\"a\x01b\"";  (* raw control byte *)
      "{\"a\":1,}";
      "1 2";  (* trailing garbage *)
      "tru";
      "nan";
    ]

let test_json_error_position () =
  match Json.parse "[1,x]" with
  | Error e ->
    Alcotest.(check bool) "position points at the x" true
      (String.length (Json.error_to_string e) > 0);
    Alcotest.(check int) "byte offset" 3 (match e with { Json.at; _ } -> at)
  | Ok _ -> Alcotest.fail "accepted [1,x]"

let prop_json_quote_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json quote/parse roundtrip" QCheck.string (fun s ->
      Json.parse (Json.quote s) = Ok (Json.Str s))

let prop_json_parse_total =
  QCheck.Test.make ~count:500 ~name:"json parse never raises" QCheck.string (fun s ->
      match Json.parse s with Ok _ | Error _ -> true)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng distinct seeds", `Quick, test_rng_distinct_seeds);
    ("rng int bounds", `Quick, test_rng_bounds);
    ("rng int_in bounds", `Quick, test_rng_int_in);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng invalid args", `Quick, test_rng_invalid);
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    ("stats mean", `Quick, test_stats_mean);
    ("stats mean empty", `Quick, test_stats_mean_empty);
    ("stats geomean", `Quick, test_stats_geomean);
    ("stats geomean invalid", `Quick, test_stats_geomean_invalid);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats min/max", `Quick, test_stats_minmax);
    ("stats ratio series", `Quick, test_ratio_series);
    QCheck_alcotest.to_alcotest prop_percentile_bounded;
    ("heap order", `Quick, test_heap_order);
    ("heap empty", `Quick, test_heap_empty);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    ("heap clear", `Quick, test_heap_clear);
    ("heap with_capacity", `Quick, test_heap_with_capacity);
    QCheck_alcotest.to_alcotest prop_heap_model;
    ("fnv pinned digests", `Quick, test_fnv_pinned_digests);
    ("fnv constants", `Quick, test_fnv_constants);
    ("fnv string folds bytes", `Quick, test_fnv_string_matches_bytes);
    ("fnv int order sensitive", `Quick, test_fnv_int_order_sensitive);
    QCheck_alcotest.to_alcotest prop_fnv_hex_roundtrip;
    ("table render", `Quick, test_table_render);
    ("table arity", `Quick, test_table_arity);
    ("table float format", `Quick, test_fmt_float);
    ("json scalars", `Quick, test_json_scalars);
    ("json escapes", `Quick, test_json_escapes);
    ("json nested access", `Quick, test_json_nested);
    ("json rejects malformed", `Quick, test_json_rejects);
    ("json error position", `Quick, test_json_error_position);
    QCheck_alcotest.to_alcotest prop_json_quote_roundtrip;
    QCheck_alcotest.to_alcotest prop_json_parse_total;
  ]
