(* Tests for the mapper stack: labeling (Algorithm 1), routing,
   placement (Algorithm 2), post-mapping level assignment, and the
   validator. *)

open Iced_arch
open Iced_dfg
open Iced_mapper

let cgra = Cgra.iced_6x6
let fir = Option.get (Iced_kernels.Registry.by_name "fir")
let all_tiles = List.init (Cgra.tile_count cgra) (fun i -> i)

let map_kernel ?(strategy = Mapper.Dvfs_aware) (k : Iced_kernels.Kernel.t) =
  Mapper.map_exn (Mapper.request ~strategy cgra) k.dfg

(* ---------------- Labeling (Algorithm 1) ---------------- *)

let test_labeling_critical_normal () =
  let labels = Labeling.label fir.dfg ~cgra ~tiles:all_tiles ~ii:4 in
  let critical = Analysis.critical_nodes fir.dfg in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "critical n%d at normal" id)
        true
        (List.assoc id labels = Dvfs.Normal))
    critical

let test_labeling_secondary_relax () =
  (* fir's accumulator cycle (length 2 <= 4/2) gets relax *)
  let labels = Labeling.label fir.dfg ~cgra ~tiles:all_tiles ~ii:4 in
  let secondary = Analysis.secondary_cycle_nodes fir.dfg in
  Alcotest.(check bool) "fir has a secondary cycle" true (secondary <> []);
  List.iter
    (fun id ->
      Alcotest.(check bool) "secondary at relax" true (List.assoc id labels = Dvfs.Relax))
    secondary

let test_labeling_grey_rest () =
  (* plenty of island capacity on 6x6 at II 4: grey nodes go to rest *)
  let labels = Labeling.label fir.dfg ~cgra ~tiles:all_tiles ~ii:4 in
  let rest_count =
    List.length (List.filter (fun (_, l) -> l = Dvfs.Rest) labels)
  in
  Alcotest.(check bool) "some rest labels" true (rest_count > 0)

let test_labeling_floor () =
  let labels = Labeling.label ~floor:Dvfs.Relax fir.dfg ~cgra ~tiles:all_tiles ~ii:4 in
  List.iter
    (fun (_, l) ->
      Alcotest.(check bool) "no label below relax" true (Dvfs.at_most Dvfs.Relax l))
    labels

let test_labeling_every_node () =
  let labels = Labeling.label fir.dfg ~cgra ~tiles:all_tiles ~ii:4 in
  Alcotest.(check int) "all nodes labeled" (Graph.node_count fir.dfg) (List.length labels)

let test_labeling_invalid () =
  Alcotest.check_raises "empty tiles" (Invalid_argument "Labeling.label: empty tile set")
    (fun () -> ignore (Labeling.label fir.dfg ~cgra ~tiles:[] ~ii:4))

(* ---------------- Router ---------------- *)

let test_router_same_tile () =
  let mrrg = Iced_mrrg.Mrrg.create cgra ~ii:4 in
  let edge = { Graph.src = 0; dst = 1; distance = 0 } in
  match Router.route mrrg ~edge ~src_tile:3 ~src_time:0 ~dst_tile:3 ~deadline:2 with
  | Ok (hops, _) -> Alcotest.(check int) "no hops" 0 (List.length hops)
  | Error e -> Alcotest.failf "route: %s" e

let test_router_neighbor () =
  let mrrg = Iced_mrrg.Mrrg.create cgra ~ii:4 in
  let edge = { Graph.src = 0; dst = 1; distance = 0 } in
  match Router.route mrrg ~edge ~src_tile:0 ~src_time:0 ~dst_tile:1 ~deadline:3 with
  | Ok (hops, _) ->
    Alcotest.(check int) "one hop" 1 (List.length hops);
    let h = List.hd hops in
    Alcotest.(check int) "from src" 0 h.Mapping.tile;
    Alcotest.(check bool) "after producer" true (h.Mapping.time >= 1);
    (* the port is now reserved *)
    Alcotest.(check bool) "port reserved" false
      (Iced_mrrg.Mrrg.is_free mrrg ~tile:0 ~time:h.Mapping.time (Iced_mrrg.Mrrg.Port h.Mapping.dir))
  | Error e -> Alcotest.failf "route: %s" e

let test_router_deadline_too_tight () =
  let mrrg = Iced_mrrg.Mrrg.create cgra ~ii:4 in
  let edge = { Graph.src = 0; dst = 1; distance = 0 } in
  (* corner to corner needs 10 hops; deadline 3 is impossible *)
  match Router.route mrrg ~edge ~src_tile:0 ~src_time:0 ~dst_tile:35 ~deadline:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "impossible route accepted"

let test_router_failure_reserves_nothing () =
  let mrrg = Iced_mrrg.Mrrg.create cgra ~ii:4 in
  let edge = { Graph.src = 0; dst = 1; distance = 0 } in
  ignore (Router.route mrrg ~edge ~src_tile:0 ~src_time:0 ~dst_tile:35 ~deadline:3);
  List.iter
    (fun tile ->
      Alcotest.(check bool) "clean" true (Iced_mrrg.Mrrg.tile_is_idle mrrg tile))
    all_tiles

(* ---------------- Mapper (Algorithm 2) ---------------- *)

let test_map_fir_ii () =
  let m = map_kernel fir in
  Alcotest.(check int) "fir at RecMII" 4 m.Mapping.ii

let test_map_all_kernels_all_strategies () =
  List.iter
    (fun (k : Iced_kernels.Kernel.t) ->
      List.iter
        (fun strategy ->
          let m = map_kernel ~strategy k in
          match Validate.check (Levels.assign m) with
          | Ok () -> ()
          | Error msgs ->
            Alcotest.failf "%s: invalid mapping: %s" k.name (List.hd msgs))
        [ Mapper.Conventional; Mapper.Dvfs_aware ])
    Iced_kernels.Registry.standalone

let test_map_iced_matches_baseline_ii () =
  (* paper claim: 2x2 islands lose no performance *)
  List.iter
    (fun (k : Iced_kernels.Kernel.t) ->
      let conv = map_kernel ~strategy:Mapper.Conventional k in
      let iced = map_kernel ~strategy:Mapper.Dvfs_aware k in
      Alcotest.(check bool)
        (Printf.sprintf "%s: iced II %d <= conv II %d" k.name iced.Mapping.ii
           conv.Mapping.ii)
        true
        (iced.Mapping.ii <= conv.Mapping.ii))
    Iced_kernels.Registry.standalone

let test_map_memory_constraint () =
  let m = map_kernel fir in
  List.iter
    (fun (n : Graph.node) ->
      if Op.needs_memory n.op then begin
        let tile = Mapping.tile_of_node m n.id in
        Alcotest.(check bool) "memory op on SPM column" true (Cgra.has_memory_port cgra tile)
      end)
    (Graph.nodes m.Mapping.dfg)

let test_map_empty_dfg () =
  match Mapper.map (Mapper.request cgra) Graph.empty with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty DFG must be rejected"

let test_map_sub_fabric () =
  let tiles = Cgra.restrict cgra ~islands:[ 0; 1 ] in
  let req = Mapper.request ~tiles cgra in
  let m = Mapper.map_exn req fir.dfg in
  List.iter
    (fun (id, _) ->
      let tile = Mapping.tile_of_node m id in
      Alcotest.(check bool) "inside partition" true (List.mem tile tiles))
    m.Mapping.placements;
  match Validate.check m with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "sub-fabric mapping invalid: %s" (List.hd msgs)

let test_map_commit_islands () =
  let req = Mapper.request ~commit_islands:true cgra in
  match Mapper.map req fir.dfg with
  | Ok m -> Alcotest.(check bool) "maps under commitment" true (m.Mapping.ii >= 4)
  | Error e -> Alcotest.failf "commit mode failed on fir: %s" e

(* ---------------- Levels ---------------- *)

let test_levels_all_normal_legal () =
  let m = map_kernel fir in
  let m = Levels.all_normal m in
  Alcotest.(check bool) "legal" true (Levels.legal m m.Mapping.island_levels)

let test_levels_gating_only_idle () =
  let m = Levels.normal_with_gating (map_kernel fir) in
  List.iter
    (fun (island, level) ->
      let busy =
        List.exists
          (fun tile -> Mapping.events_of_tile m tile <> [])
          (Cgra.island_tiles cgra island)
      in
      match level with
      | Dvfs.Power_gated ->
        Alcotest.(check bool) "gated islands idle" false busy
      | _ -> Alcotest.(check bool) "active islands busy" true busy)
    m.Mapping.island_levels

let test_levels_assign_sound () =
  List.iter
    (fun (k : Iced_kernels.Kernel.t) ->
      let m = Levels.assign (map_kernel k) in
      Alcotest.(check bool)
        (k.name ^ " assignment sound")
        true
        (Levels.legal m m.Mapping.island_levels))
    Iced_kernels.Registry.standalone

let test_levels_assign_floor () =
  let m = Levels.assign ~floor:Dvfs.Relax ~allow_gating:false (map_kernel fir) in
  List.iter
    (fun (_, level) ->
      Alcotest.(check bool) "at least relax" true (Dvfs.at_most Dvfs.Relax level))
    m.Mapping.island_levels

let test_levels_illegal_detected () =
  (* slowing an island that hosts the whole critical cycle at II=RecMII
     must be illegal *)
  let m = map_kernel fir in
  let critical = Analysis.critical_nodes m.Mapping.dfg in
  let islands =
    List.sort_uniq compare
      (List.map (fun id -> Cgra.island_of cgra (Mapping.tile_of_node m id)) critical)
  in
  let levels =
    List.map
      (fun island ->
        (island, if List.mem island islands then Dvfs.Relax else Dvfs.Normal))
      (Cgra.islands cgra)
  in
  Alcotest.(check bool) "slowed critical island rejected" false (Levels.legal m levels)

(* ---------------- Validator on corrupted mappings ---------------- *)

let test_validate_detects_conflict () =
  let m = map_kernel fir in
  (* force two nodes onto the same tile and time *)
  match m.Mapping.placements with
  | (n1, (t1, c1)) :: (n2, _) :: rest ->
    let corrupted =
      { m with Mapping.placements = (n1, (t1, c1)) :: (n2, (t1, c1)) :: rest }
    in
    (match Validate.check corrupted with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "double booking must be rejected")
  | _ -> Alcotest.fail "expected placements"

let test_validate_detects_missing_placement () =
  let m = map_kernel fir in
  let corrupted = { m with Mapping.placements = List.tl m.Mapping.placements } in
  match Validate.check corrupted with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing placement must be rejected"

let test_validate_detects_broken_route () =
  let m = map_kernel fir in
  match
    List.find_opt (fun (r : Mapping.route) -> r.hops <> []) m.Mapping.routes
  with
  | None -> () (* everything same-tile: nothing to corrupt *)
  | Some r ->
    let broken_hops =
      List.map (fun (h : Mapping.hop) -> { h with Mapping.time = h.time + 1000 }) r.hops
    in
    let routes =
      { r with Mapping.hops = broken_hops }
      :: List.filter (fun (x : Mapping.route) -> x != r) m.Mapping.routes
    in
    (match Validate.check { m with Mapping.routes } with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "late route must be rejected")

(* ---------------- Floorplan ---------------- *)

let test_floorplan_renders () =
  let m = Levels.assign (map_kernel fir) in
  let text = Floorplan.render m in
  Alcotest.(check bool) "mentions every cycle" true
    (List.for_all
       (fun c ->
         let needle = Printf.sprintf "cycle %d:" c in
         let rec scan i =
           i + String.length needle <= String.length text
           && (String.sub text i (String.length needle) = needle || scan (i + 1))
         in
         scan 0)
       (List.init m.Mapping.ii (fun i -> i)));
  Alcotest.check_raises "bad cycle" (Invalid_argument "Floorplan.cycle_grid: bad cycle")
    (fun () -> ignore (Floorplan.cycle_grid m ~cycle:m.Mapping.ii))

let test_floorplan_level_map () =
  let m = Levels.assign (map_kernel fir) in
  let grid = Floorplan.level_grid m in
  (* a tiny kernel leaves gated islands: the map must contain '-' *)
  Alcotest.(check bool) "has gated cells" true (String.contains grid '-')

(* ---------------- Exact mapper as optimality reference ------------- *)

let small_loop cycle_len extra =
  (* one recurrence cycle of [cycle_len] plus [extra] side nodes *)
  let g = Graph.empty in
  let g, phi = Graph.add_node g Op.Phi in
  let g, last =
    List.fold_left
      (fun (g, prev) _ ->
        let g, id = Graph.add_node g Op.Add in
        (Graph.add_edge g prev id, id))
      (g, phi)
      (List.init (cycle_len - 1) (fun i -> i))
  in
  let g = Graph.add_edge ~distance:1 g last phi in
  List.fold_left
    (fun (g, _) i ->
      let g, ld = Graph.add_node ~label:(Printf.sprintf "x%d" i) g Op.Load in
      let g, mul = Graph.add_node g Op.Mul in
      let g = Graph.add_edge g ld mul in
      let g = Graph.add_edge g phi mul in
      (g, mul))
    (g, phi)
    (List.init extra (fun i -> i))
  |> fst

let test_exact_finds_recmii () =
  let g = small_loop 3 1 in
  let cgra = Cgra.make ~rows:4 ~cols:4 () in
  match Exact.minimal_ii cgra g with
  | Exact.Optimal ii -> Alcotest.(check int) "optimal = RecMII" (Analysis.rec_mii g) ii
  | Exact.Infeasible -> Alcotest.fail "expected feasible"
  | Exact.Unknown _ -> Alcotest.fail "budget too small"

let test_heuristic_matches_exact () =
  (* on small loops the heuristic must reach the exact optimum *)
  List.iter
    (fun (cycle_len, extra) ->
      let g = small_loop cycle_len extra in
      let cgra = Cgra.make ~rows:4 ~cols:4 () in
      match Exact.minimal_ii cgra g with
      | Exact.Optimal optimal ->
        let m = Mapper.map_exn (Mapper.request cgra) g in
        Alcotest.(check int)
          (Printf.sprintf "heuristic optimal for cycle %d + %d" cycle_len extra)
          optimal m.Mapping.ii
      | Exact.Infeasible | Exact.Unknown _ -> ())
    [ (2, 1); (3, 1); (4, 2); (5, 1) ]

let test_exact_resource_bound () =
  (* 6 independent loads on a 2x2 fabric with 2 memory tiles: the FU
     capacity of the SPM column forces II >= 3 *)
  let g = Graph.empty in
  let g, st = Graph.add_node g Op.Store in
  let g =
    List.fold_left
      (fun g i ->
        let g, ld = Graph.add_node ~label:(Printf.sprintf "x%d" i) g Op.Load in
        Graph.add_edge g ld st)
      g
      (List.init 6 (fun i -> i))
  in
  let cgra = Cgra.make ~rows:2 ~cols:2 () in
  match Exact.minimal_ii cgra g with
  | Exact.Optimal ii -> Alcotest.(check bool) "memory column binds" true (ii >= 3)
  | Exact.Infeasible -> Alcotest.fail "feasible at some II"
  | Exact.Unknown _ -> Alcotest.fail "budget too small"

let test_exact_empty () =
  let cgra = Cgra.make ~rows:2 ~cols:2 () in
  Alcotest.(check bool) "empty infeasible" true
    (Exact.minimal_ii cgra Graph.empty = Exact.Infeasible)

(* ---------------- Bitstream ---------------- *)

let test_bitstream_covers_schedule () =
  let m = Levels.assign (map_kernel fir) in
  let configs = Bitstream.generate m in
  (* every placed node appears as exactly one FU slot *)
  let fu_slots =
    List.fold_left
      (fun acc (c : Bitstream.tile_config) ->
        acc
        + Array.fold_left
            (fun acc (s : Bitstream.slot) -> if s.fu <> None then acc + 1 else acc)
            0 c.slots)
      0 configs
  in
  Alcotest.(check int) "one FU slot per node" (Graph.node_count m.Mapping.dfg) fu_slots;
  (* config tiles = used tiles *)
  Alcotest.(check int) "one config per active tile"
    (List.length (Mapping.used_tiles m))
    (List.length configs)

let test_bitstream_roundtrip () =
  let m = Levels.assign (map_kernel fir) in
  List.iter
    (fun (c : Bitstream.tile_config) ->
      Array.iter
        (fun (slot : Bitstream.slot) ->
          let word = Bitstream.encode_slot slot in
          match Bitstream.decode_slot word with
          | None ->
            if slot.fu <> None || slot.outputs <> [] then
              Alcotest.fail "non-idle slot decoded as idle"
          | Some decoded ->
            (match (slot.fu, decoded.Bitstream.fu) with
            | None, None -> ()
            | Some (op, sources), Some (op', sources') ->
              (match (op, op') with
              | Op.Const _, Op.Const _ -> ()
              | a, b ->
                Alcotest.(check string) "opcode" (Op.to_string a) (Op.to_string b));
              Alcotest.(check int) "operand sources survive"
                (min 4 (List.length sources))
                (List.length sources')
            | _ -> Alcotest.fail "fu presence changed");
            let canon outs = List.sort compare outs in
            Alcotest.(check bool) "outputs survive" true
              (canon slot.outputs = canon decoded.Bitstream.outputs))
        c.slots)
    (Bitstream.generate m)

let test_bitstream_size () =
  let m = Levels.assign (map_kernel fir) in
  let bits = Bitstream.total_bits m in
  Alcotest.(check bool) "non-trivial config" true (bits > 0);
  Alcotest.(check int) "64 bits per slot per active tile"
    (64 * m.Mapping.ii * List.length (Bitstream.generate m))
    bits

(* ---------------- Property: random loops map and validate ---------- *)

let prop_random_loops_map =
  QCheck.Test.make ~name:"random loops map and validate on 6x6" ~count:40
    QCheck.(pair (3 -- 10) small_nat)
    (fun (n, seed) ->
      let rng = Iced_util.Rng.create seed in
      let g = Graph.empty in
      let g, phi = Graph.add_node g Op.Phi in
      let g, nodes =
        List.fold_left
          (fun (g, acc) _ ->
            (* fold-style ops accept any arity, matching the random
               single-input wiring *)
            let op = Iced_util.Rng.choose rng [ Op.Add; Op.Mul; Op.Xor ] in
            let g, id = Graph.add_node g op in
            let src = Iced_util.Rng.choose rng (phi :: acc) in
            let g = Graph.add_edge g src id in
            (g, id :: acc))
          (g, []) (List.init n (fun i -> i))
      in
      let g = Graph.add_edge ~distance:1 g (List.hd nodes) phi in
      match Mapper.map (Mapper.request cgra) g with
      | Error _ -> false
      | Ok m -> (
        let m = Levels.assign m in
        match Validate.check m with
        | Ok () ->
          let sim = Iced_sim.Sim.run m ~iterations:6 in
          sim.Iced_sim.Sim.violations = []
        | Error _ -> false))

(* ---------------- Property: heuristic II is optimal on small DFGs - *)

let test_heuristic_optimal_on_random_loops () =
  (* 20 seeded random accumulator loops of at most 8 nodes, each mapped
     on a 2x2 and a 3x3 fabric: wherever the branch-and-bound reference
     proves an optimal II, the heuristic must reach it *)
  let checked = ref 0 in
  List.iter
    (fun seed ->
      let rng = Iced_util.Rng.create seed in
      let n = Iced_util.Rng.int_in rng 2 7 in
      let g = Graph.empty in
      let g, phi = Graph.add_node g Op.Phi in
      let g, nodes =
        List.fold_left
          (fun (g, acc) _ ->
            let op = Iced_util.Rng.choose rng [ Op.Add; Op.Mul; Op.Xor ] in
            let g, id = Graph.add_node g op in
            let src = Iced_util.Rng.choose rng (phi :: acc) in
            let g = Graph.add_edge g src id in
            (g, id :: acc))
          (g, []) (List.init n (fun i -> i))
      in
      let g = Graph.add_edge ~distance:1 g (List.hd nodes) phi in
      List.iter
        (fun size ->
          let cgra = Cgra.make ~rows:size ~cols:size () in
          match Exact.minimal_ii cgra g with
          | Exact.Infeasible | Exact.Unknown _ -> ()
          | Exact.Optimal optimal -> (
            incr checked;
            match Mapper.map (Mapper.request cgra) g with
            | Error msg ->
              Alcotest.fail
                (Printf.sprintf "seed %d (%d nodes) on %dx%d: heuristic failed: %s" seed
                   (n + 1) size size msg)
            | Ok m ->
              Alcotest.(check int)
                (Printf.sprintf "seed %d (%d nodes) on %dx%d optimal" seed (n + 1) size
                   size)
                optimal m.Mapping.ii))
        [ 2; 3 ])
    (List.init 20 (fun i -> i));
  Alcotest.(check bool) "the reference proved an optimum somewhere" true (!checked > 0)

(* ---------------- SAT-backed certification ---------------- *)

(* the seeded accumulator-loop generator the agreement tests share *)
let random_loop seed =
  let rng = Iced_util.Rng.create seed in
  let n = Iced_util.Rng.int_in rng 2 7 in
  let g = Graph.empty in
  let g, phi = Graph.add_node g Op.Phi in
  let g, nodes =
    List.fold_left
      (fun (g, acc) _ ->
        let op = Iced_util.Rng.choose rng [ Op.Add; Op.Mul; Op.Xor ] in
        let g, id = Graph.add_node g op in
        let src = Iced_util.Rng.choose rng (phi :: acc) in
        let g = Graph.add_edge g src id in
        (g, id :: acc))
      (g, []) (List.init n (fun i -> i))
  in
  Graph.add_edge ~distance:1 g (List.hd nodes) phi

let test_certify_finds_recmii () =
  let g = small_loop 3 1 in
  let cgra = Cgra.make ~rows:4 ~cols:4 () in
  let r = Exact.certify cgra g in
  match r.Exact.verdict with
  | Exact.Optimal ii ->
    Alcotest.(check int) "optimal = RecMII" (Analysis.rec_mii g) ii;
    (match r.Exact.witness with
    | None -> Alcotest.fail "optimal verdict without witness"
    | Some m -> (
      Alcotest.(check int) "witness at the certified II" ii m.Mapping.ii;
      match Validate.check m with
      | Ok () -> ()
      | Error msgs -> Alcotest.failf "witness invalid: %s" (String.concat "; " msgs)))
  | Exact.Infeasible -> Alcotest.fail "expected feasible"
  | Exact.Unknown _ -> Alcotest.fail "budget too small"

let test_certify_agrees_with_legacy () =
  (* wherever the branch-and-bound decides, the SAT oracle must agree *)
  let agreed = ref 0 in
  List.iter
    (fun seed ->
      let g = random_loop seed in
      List.iter
        (fun size ->
          let cgra = Cgra.make ~rows:size ~cols:size () in
          let ctx outcome =
            Printf.sprintf "seed %d on %dx%d: %s" seed size size outcome
          in
          match Exact.minimal_ii cgra g with
          | Exact.Unknown _ -> ()
          | Exact.Infeasible -> (
            incr agreed;
            match (Exact.certify cgra g).Exact.verdict with
            | Exact.Infeasible -> ()
            | Exact.Optimal ii ->
              Alcotest.fail (ctx (Printf.sprintf "sat found II %d, legacy infeasible" ii))
            | Exact.Unknown _ -> Alcotest.fail (ctx "sat undecided, legacy infeasible"))
          | Exact.Optimal optimal -> (
            incr agreed;
            let r = Exact.certify cgra g in
            match r.Exact.verdict with
            | Exact.Optimal ii ->
              Alcotest.(check int) (ctx "optimal II") optimal ii
            | Exact.Infeasible -> Alcotest.fail (ctx "sat infeasible, legacy optimal")
            | Exact.Unknown _ -> Alcotest.fail (ctx "sat undecided, legacy optimal")))
        [ 2; 3 ])
    (List.init 20 (fun i -> i));
  Alcotest.(check bool) "legacy decided somewhere" true (!agreed > 0)

let test_certify_witness_roundtrip =
  QCheck.Test.make ~name:"certify witnesses pass Validate.check" ~count:15
    QCheck.(small_nat)
    (fun seed ->
      let g = random_loop (100 + seed) in
      let cgra = Cgra.make ~rows:3 ~cols:3 () in
      let r = Exact.certify cgra g in
      match (r.Exact.verdict, r.Exact.witness) with
      | Exact.Optimal ii, Some m ->
        m.Mapping.ii = ii && Validate.check m = Ok ()
      | Exact.Optimal _, None -> false
      | (Exact.Infeasible | Exact.Unknown _), Some _ -> false
      | (Exact.Infeasible | Exact.Unknown _), None -> true)

let test_certify_deterministic () =
  let g = small_loop 4 2 in
  let cgra = Cgra.make ~rows:4 ~cols:4 () in
  let run () =
    let r = Exact.certify ~seed:3 cgra g in
    ( r.Exact.verdict,
      r.Exact.per_ii,
      r.Exact.conflicts,
      r.Exact.decisions,
      r.Exact.propagations,
      r.Exact.route_blocks,
      Option.map (fun (m : Mapping.t) -> m.Mapping.placements) r.Exact.witness )
  in
  Alcotest.(check bool) "identical reports" true (run () = run ())

let test_certify_budget_reports_first_undecided () =
  let g = small_loop 3 1 in
  let cgra = Cgra.make ~rows:4 ~cols:4 () in
  let start = Analysis.min_ii g ~tiles:(Cgra.tile_count cgra) in
  let r = Exact.certify ~budget_conflicts:0 cgra g in
  (match r.Exact.verdict with
  | Exact.Unknown { first_undecided; feasible_at = None } ->
    Alcotest.(check int) "first undecided = start II" start first_undecided
  | _ -> Alcotest.fail "expected Unknown with no feasible II");
  Alcotest.(check bool) "every II undecided" true
    (List.for_all (fun (_, o) -> o = Exact.Ii_budget) r.Exact.per_ii)

let test_legacy_unknown_reports_first_undecided () =
  (* II = 2 is refuted only by an exhaustive search that blows a tiny
     attempt budget; II = 3 is found within it.  The verdict must name
     II 2 as undecided and II 3 as the known-feasible upper bound. *)
  let g = Graph.empty in
  let g, st = Graph.add_node g Op.Store in
  let g =
    List.fold_left
      (fun g i ->
        let g, ld = Graph.add_node ~label:(Printf.sprintf "x%d" i) g Op.Load in
        Graph.add_edge g ld st)
      g
      (List.init 6 (fun i -> i))
  in
  let cgra = Cgra.make ~rows:2 ~cols:2 () in
  let start = Analysis.min_ii g ~tiles:(Cgra.tile_count cgra) in
  let opt =
    match Exact.minimal_ii cgra g with
    | Exact.Optimal ii -> ii
    | _ -> Alcotest.fail "expected an unconstrained optimum"
  in
  Alcotest.(check bool) "lower IIs exist to starve" true (opt > start);
  (* Find a budget that starves some refutation below [opt] but still
     lets the search succeed above it: the verdict must then bracket
     the optimum between the first undecided II and the feasible one. *)
  let rec find_budget b =
    if b > 10_000_000 then Alcotest.fail "no budget separates the IIs"
    else
      match Exact.minimal_ii ~budget:b cgra g with
      | Exact.Unknown { first_undecided; feasible_at = Some f } ->
        Alcotest.(check bool) "undecided below the optimum" true
          (first_undecided >= start && first_undecided < opt);
        Alcotest.(check bool) "feasible at or above the optimum" true (f >= opt)
      | _ -> find_budget (b * 2)
  in
  find_budget 8

let suite =
  [
    ("labeling: critical nodes normal", `Quick, test_labeling_critical_normal);
    ("labeling: secondary cycles relax", `Quick, test_labeling_secondary_relax);
    ("labeling: grey nodes rest", `Quick, test_labeling_grey_rest);
    ("labeling: floor respected", `Quick, test_labeling_floor);
    ("labeling: covers every node", `Quick, test_labeling_every_node);
    ("labeling: invalid input", `Quick, test_labeling_invalid);
    ("router: same tile", `Quick, test_router_same_tile);
    ("router: neighbor hop", `Quick, test_router_neighbor);
    ("router: impossible deadline", `Quick, test_router_deadline_too_tight);
    ("router: failure reserves nothing", `Quick, test_router_failure_reserves_nothing);
    ("map: fir at II=4", `Quick, test_map_fir_ii);
    ("map: all kernels, all strategies", `Slow, test_map_all_kernels_all_strategies);
    ("map: iced II <= conventional II", `Slow, test_map_iced_matches_baseline_ii);
    ("map: memory ops on SPM column", `Quick, test_map_memory_constraint);
    ("map: empty DFG rejected", `Quick, test_map_empty_dfg);
    ("map: sub-fabric", `Quick, test_map_sub_fabric);
    ("map: committed islands", `Quick, test_map_commit_islands);
    ("levels: all normal legal", `Quick, test_levels_all_normal_legal);
    ("levels: gating only idle islands", `Quick, test_levels_gating_only_idle);
    ("levels: assignment sound for all kernels", `Slow, test_levels_assign_sound);
    ("levels: floor respected", `Quick, test_levels_assign_floor);
    ("levels: illegal lowering detected", `Quick, test_levels_illegal_detected);
    ("validate: double booking", `Quick, test_validate_detects_conflict);
    ("validate: missing placement", `Quick, test_validate_detects_missing_placement);
    ("validate: broken route", `Quick, test_validate_detects_broken_route);
    ("floorplan: renders every cycle", `Quick, test_floorplan_renders);
    ("floorplan: level map", `Quick, test_floorplan_level_map);
    ("exact: finds RecMII", `Quick, test_exact_finds_recmii);
    ("exact: heuristic matches optimum", `Slow, test_heuristic_matches_exact);
    ("exact: heuristic optimal on random loops", `Slow, test_heuristic_optimal_on_random_loops);
    ("exact: resource-bound II", `Quick, test_exact_resource_bound);
    ("exact: empty graph", `Quick, test_exact_empty);
    ("exact: legacy unknown names first undecided II", `Quick,
     test_legacy_unknown_reports_first_undecided);
    ("certify: finds RecMII with valid witness", `Quick, test_certify_finds_recmii);
    ("certify: agrees with legacy oracle", `Slow, test_certify_agrees_with_legacy);
    ("certify: deterministic report", `Quick, test_certify_deterministic);
    ("certify: zero budget is all-unknown", `Quick,
     test_certify_budget_reports_first_undecided);
    QCheck_alcotest.to_alcotest test_certify_witness_roundtrip;
    ("bitstream: covers the schedule", `Quick, test_bitstream_covers_schedule);
    ("bitstream: encode/decode roundtrip", `Quick, test_bitstream_roundtrip);
    ("bitstream: size accounting", `Quick, test_bitstream_size);
  ]
