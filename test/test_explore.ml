(* Tests for the design-space exploration subsystem: space enumeration
   and sampling, the persistent evaluation cache, the domain pool, the
   Pareto extractor, and end-to-end sweep determinism. *)

open Iced_explore

let tiny_spec =
  {
    Space.fabrics = [ (4, 4) ];
    islands = [ (1, 1); (2, 2); (4, 4); (3, 3) ];  (* 3x3 does not tile 4x4 *)
    spm_banks = [ 8 ];
    floors = [ Iced_arch.Dvfs.Rest ];
    unrolls = [ 1 ];
    max_iis = [ 32 ];
  }

let tiny_kernels =
  List.filter_map Iced_kernels.Registry.by_name [ "fir"; "relu" ]

(* ---------------- Space ---------------- *)

let test_space_enumerate_valid () =
  let points = Space.enumerate Space.default_spec in
  Alcotest.(check bool) "non-empty" true (points <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) (Space.to_string p ^ " valid") true (Space.is_valid p);
      Alcotest.(check int) "rows tiled" 0 (p.Space.rows mod p.Space.island_rows);
      Alcotest.(check int) "cols tiled" 0 (p.Space.cols mod p.Space.island_cols))
    points

let test_space_filters_non_tiling () =
  let points = Space.enumerate tiny_spec in
  (* 3x3 islands cannot tile a 4x4 fabric *)
  Alcotest.(check int) "three island shapes survive" 3 (List.length points);
  Alcotest.(check bool) "no 3x3 point" true
    (List.for_all (fun p -> p.Space.island_rows <> 3) points)

let test_space_roundtrip () =
  List.iter
    (fun p ->
      match Space.of_string (Space.to_string p) with
      | Some p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | None -> Alcotest.fail ("of_string failed on " ^ Space.to_string p))
    (Space.enumerate Space.default_spec);
  Alcotest.(check bool) "garbage rejected" true (Space.of_string "6x6/bogus" = None)

let test_space_sample_deterministic () =
  let spec = { Space.default_spec with Space.unrolls = [ 1; 2 ] } in
  let a = Space.sample spec ~seed:7 ~count:5 in
  let b = Space.sample spec ~seed:7 ~count:5 in
  Alcotest.(check int) "count honoured" 5 (List.length a);
  Alcotest.(check bool) "same seed, same sample" true (a = b);
  let all = Space.enumerate spec in
  Alcotest.(check bool) "sample is a sublist of the enumeration" true
    (List.for_all (fun p -> List.mem p all) a);
  (* canonical order is preserved: indices are increasing *)
  let indices =
    List.map
      (fun p ->
        let rec index i = function
          | [] -> -1
          | q :: _ when q = p -> i
          | _ :: rest -> index (i + 1) rest
        in
        index 0 all)
      a
  in
  Alcotest.(check bool) "canonical order" true (List.sort compare indices = indices);
  Alcotest.(check bool) "small space returned whole" true
    (Space.sample tiny_spec ~seed:1 ~count:100 = Space.enumerate tiny_spec)

(* ---------------- Pool ---------------- *)

let test_pool_matches_serial () =
  let items = Array.init 50 (fun i -> i) in
  let f x = x * x in
  let serial = Pool.map ~workers:1 f items in
  let parallel = Pool.map ~workers:4 f items in
  Alcotest.(check bool) "same results in same slots" true (serial = parallel)

let test_pool_on_item_counts () =
  let seen = ref 0 in
  let _ = Pool.map ~workers:3 ~on_item:(fun _ -> incr seen) (fun x -> x) (Array.make 17 0) in
  Alcotest.(check int) "every item notified once" 17 !seen

(* ---------------- Pareto ---------------- *)

let test_pareto_hand_built () =
  (* maximize both coordinates; frontier is c, d, e (b is dominated by
     c, a by everything) *)
  let points =
    [ ("a", [ 1.0; 1.0 ]); ("b", [ 2.0; 2.0 ]); ("c", [ 3.0; 2.0 ]);
      ("d", [ 2.0; 3.0 ]); ("e", [ 4.0; 1.0 ]) ]
  in
  let frontier = Pareto.frontier ~objectives:snd points in
  Alcotest.(check (list string)) "frontier members" [ "c"; "d"; "e" ]
    (List.map fst frontier)

let test_pareto_duplicates_survive () =
  let points = [ ("a", [ 1.0; 2.0 ]); ("b", [ 1.0; 2.0 ]) ] in
  Alcotest.(check int) "equal vectors both survive" 2
    (List.length (Pareto.frontier ~objectives:snd points))

let test_pareto_nan_excluded () =
  let points = [ ("a", [ nan; 9.0 ]); ("b", [ 1.0; 1.0 ]) ] in
  Alcotest.(check (list string)) "nan never joins nor dominates" [ "b" ]
    (List.map fst (Pareto.frontier ~objectives:snd points))

(* ---------------- Cache ---------------- *)

let with_temp_cache f =
  let path = Filename.temp_file "iced_explore" ".jsonl" in
  let finally () =
    Sys.remove path;
    let bak = path ^ ".bak" in
    if Sys.file_exists bak then Sys.remove bak
  in
  Fun.protect ~finally (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_cache_roundtrip () =
  with_temp_cache (fun path ->
      let m =
        {
          Outcome.kernel = "fir"; ii = 4; utilization = 0.75; dvfs = 0.5;
          power_mw = 66.25; throughput_mips = 108.5; energy_nj = 0.61; edp = 0.0056;
        }
      in
      let c = Cache.open_file path in
      Cache.store c ~key:"k1" (Outcome.Mapped m);
      Cache.store c ~key:"k2" (Outcome.Failed "no mapping up to II=8 (last: \"x\")");
      Cache.store c ~key:"k3" Outcome.Timed_out;
      Cache.close c;
      let c = Cache.open_file path in
      (match Cache.find c "k1" with
      | Some (Outcome.Mapped m') -> Alcotest.(check bool) "measurement survives" true (m = m')
      | _ -> Alcotest.fail "k1 missing after reload");
      (match Cache.find c "k2" with
      | Some (Outcome.Failed msg) ->
        Alcotest.(check string) "message survives escaping" "no mapping up to II=8 (last: \"x\")" msg
      | _ -> Alcotest.fail "k2 missing after reload");
      Alcotest.(check bool) "timeouts are never persisted" true (Cache.find c "k3" = None);
      Alcotest.(check int) "hits" 2 (Cache.hits c);
      Alcotest.(check int) "misses" 1 (Cache.misses c);
      Cache.close c)

let test_cache_skips_corrupt_lines () =
  with_temp_cache (fun path ->
      let c = Cache.open_file path in
      Cache.store c ~key:"good" (Outcome.Failed "nope");
      Cache.close c;
      let intact = read_file path in
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"v\":1,\"k\":\"trunc";
      close_out oc;
      let c = Cache.open_file path in
      Alcotest.(check bool) "good record survives" true (Cache.find c "good" <> None);
      Alcotest.(check int) "corrupt tail dropped" 1 (Cache.size c);
      (match Cache.recovery c with
      | Some r ->
        Alcotest.(check int) "kept one record" 1 r.Cache.kept_records;
        Alcotest.(check bool) "truncated, not set aside" false r.Cache.renamed_bak
      | None -> Alcotest.fail "recovery not reported");
      Cache.close c;
      Alcotest.(check string) "file truncated back to the intact prefix" intact
        (read_file path))

let test_cache_version_mismatch_resets () =
  with_temp_cache (fun path ->
      let foreign = "{\"iced_explore_cache\":999}\n{\"v\":999,\"k\":\"old\",\"s\":\"timeout\"}\n" in
      write_file path foreign;
      let c = Cache.open_file path in
      Alcotest.(check int) "foreign store ignored" 0 (Cache.size c);
      Alcotest.(check bool) "old key gone" true (Cache.find c "old" = None);
      (match Cache.recovery c with
      | Some r -> Alcotest.(check bool) "set aside as .bak" true r.Cache.renamed_bak
      | None -> Alcotest.fail "recovery not reported");
      Cache.close c;
      Alcotest.(check string) "old store preserved byte-for-byte" foreign
        (read_file (path ^ ".bak")))

(* The crash-safety contract: a cache image cut at ANY byte offset
   reopens to exactly the records whose frames lie fully before the
   cut, and the file is repaired to that byte-identical prefix. *)
let test_cache_truncation_at_every_byte () =
  with_temp_cache (fun path ->
      let c = Cache.open_file path in
      Cache.store c ~key:"k1" (Outcome.Failed "one");
      Cache.store c ~key:"k2" Outcome.(
        Mapped
          {
            kernel = "fir"; ii = 3; utilization = 0.5; dvfs = 0.7; power_mw = 12.5;
            throughput_mips = 96.0; energy_nj = 0.13; edp = 0.0014;
          });
      Cache.store c ~key:"k3" (Outcome.Failed "three");
      Cache.close c;
      let image = read_file path in
      let total = String.length image in
      let entries = Cache.wal_entries image in
      Alcotest.(check int) "three frames on disk" 3 (List.length entries);
      let header_len = fst (List.hd entries) - 26 in
      let frame_ends = List.map (fun (off, len) -> off + len + 1) entries in
      for cut = 0 to total do
        let label fmt = Printf.ksprintf (fun s -> Printf.sprintf "cut@%d: %s" cut s) fmt in
        write_file path (String.sub image 0 cut);
        let c = Cache.open_file path in
        if cut = 0 then begin
          Alcotest.(check int) (label "empty file starts fresh") 0 (Cache.size c);
          Alcotest.(check bool) (label "no recovery") true (Cache.recovery c = None)
        end
        else if cut < header_len then begin
          (* an unrecognizable header prefix: set aside, start fresh *)
          Alcotest.(check int) (label "torn header keeps nothing") 0 (Cache.size c);
          (match Cache.recovery c with
          | Some r -> Alcotest.(check bool) (label ".bak") true r.Cache.renamed_bak
          | None -> Alcotest.fail (label "recovery not reported"));
          Sys.remove (path ^ ".bak")
        end
        else begin
          let kept = List.length (List.filter (fun e -> e <= cut) frame_ends) in
          let boundary =
            List.fold_left (fun acc e -> if e <= cut then e else acc) header_len frame_ends
          in
          Alcotest.(check int) (label "records before the cut survive") kept (Cache.size c);
          (if cut > boundary then
             match Cache.recovery c with
             | Some r ->
               Alcotest.(check int) (label "kept_records") kept r.Cache.kept_records;
               Alcotest.(check int) (label "dropped_bytes") (cut - boundary)
                 r.Cache.dropped_bytes
             | None -> Alcotest.fail (label "recovery not reported")
           else
             Alcotest.(check bool) (label "clean prefix needs no recovery") true
               (Cache.recovery c = None));
          Cache.close c;
          Alcotest.(check string)
            (label "repaired to the byte-identical prefix")
            (String.sub image 0 boundary)
            (read_file path);
          (* reopening the repaired file is quiet *)
          let c = Cache.open_file path in
          Alcotest.(check bool) (label "second open is clean") true
            (Cache.recovery c = None);
          Alcotest.(check int) (label "records stable on reopen") kept (Cache.size c)
        end;
        Cache.close c
      done)

let test_cache_flip_any_byte_keeps_prefix () =
  with_temp_cache (fun path ->
      let c = Cache.open_file path in
      Cache.store c ~key:"k1" (Outcome.Failed "one");
      Cache.store c ~key:"k2" (Outcome.Failed "two");
      Cache.store c ~key:"k3" (Outcome.Failed "three");
      Cache.close c;
      let image = read_file path in
      let entries = Cache.wal_entries image in
      let header_len = fst (List.hd entries) - 26 in
      let frame_start (off, _) = off - 26 in
      for pos = 0 to String.length image - 1 do
        let label s = Printf.sprintf "flip@%d: %s" pos s in
        let damaged = Bytes.of_string image in
        Bytes.set damaged pos (Char.chr (Char.code image.[pos] lxor 0x01));
        write_file path (Bytes.to_string damaged);
        let c = Cache.open_file path in
        if pos < header_len then begin
          Alcotest.(check int) (label "damaged header keeps nothing") 0 (Cache.size c);
          Sys.remove (path ^ ".bak")
        end
        else begin
          (* every frame strictly before the damaged one survives *)
          let kept =
            List.length (List.filter (fun e -> frame_start e + 26 + snd e + 1 <= pos) entries)
          in
          Alcotest.(check int) (label "frames before the flip survive") kept (Cache.size c)
        end;
        Cache.close c
      done)

let test_cache_garbage_prepended_sets_aside () =
  with_temp_cache (fun path ->
      let c = Cache.open_file path in
      Cache.store c ~key:"k" (Outcome.Failed "x");
      Cache.close c;
      let original = read_file path in
      write_file path ("GARBAGE" ^ original);
      let c = Cache.open_file path in
      Alcotest.(check int) "nothing trusted" 0 (Cache.size c);
      Cache.store c ~key:"post" (Outcome.Failed "y");
      Cache.close c;
      Alcotest.(check string) "damaged image preserved as .bak" ("GARBAGE" ^ original)
        (read_file (path ^ ".bak"));
      let c = Cache.open_file path in
      Alcotest.(check int) "fresh store works after set-aside" 1 (Cache.size c);
      Alcotest.(check bool) "new record present" true (Cache.find c "post" <> None);
      Cache.close c)

let test_cache_fsync_roundtrip () =
  with_temp_cache (fun path ->
      let c = Cache.open_file ~fsync:true path in
      Cache.store c ~key:"durable" (Outcome.Failed "synced");
      Cache.close c;
      let c = Cache.open_file ~fsync:true path in
      Alcotest.(check bool) "fsynced record survives" true (Cache.find c "durable" <> None);
      Cache.close c)

let test_cache_wal_frame_consistency () =
  with_temp_cache (fun path ->
      let c = Cache.open_file path in
      Cache.store c ~key:"k1" (Outcome.Failed "one");
      Cache.close c;
      let image = read_file path in
      (* what store appended is exactly what frame_record renders *)
      let expected = Cache.frame_record ~key:"k1" (Outcome.Failed "one") in
      let tail = String.sub image (String.length image - String.length expected)
          (String.length expected) in
      Alcotest.(check string) "frame bytes" expected tail;
      match Cache.wal_entries image with
      | [ (off, len) ] ->
        Alcotest.(check bool) "payload parses back" true
          (String.length (String.sub image off len) = len)
      | entries -> Alcotest.failf "expected 1 frame, scanned %d" (List.length entries))

let test_cache_content_hash_stable () =
  Alcotest.(check string) "FNV-1a of empty" "cbf29ce484222325" (Cache.content_hash "");
  Alcotest.(check bool) "distinct keys, distinct hashes" true
    (Cache.content_hash "a" <> Cache.content_hash "b")

(* ---------------- Sweep ---------------- *)

let points3 () =
  Space.enumerate tiny_spec

let test_sweep_cache_hit_semantics () =
  with_temp_cache (fun path ->
      let c = Cache.open_file path in
      let _, stats1 = Sweep.run ~cache:c (points3 ()) tiny_kernels in
      Alcotest.(check int) "first run maps everything" stats1.Sweep.pairs stats1.Sweep.fresh;
      Cache.close c;
      let c = Cache.open_file path in
      let outcomes1, _ = Sweep.run ~cache:c (points3 ()) tiny_kernels in
      Cache.close c;
      let c = Cache.open_file path in
      let outcomes2, stats2 = Sweep.run ~cache:c (points3 ()) tiny_kernels in
      Alcotest.(check int) "second sweep does zero fresh mappings" 0 stats2.Sweep.fresh;
      Alcotest.(check int) "everything served from cache" stats2.Sweep.pairs
        stats2.Sweep.cached;
      Alcotest.(check string) "cached report identical"
        (Report.render outcomes1) (Report.render outcomes2);
      Cache.close c)

let test_sweep_parallel_matches_serial () =
  let run workers =
    let config = { Sweep.default_config with Sweep.workers } in
    let outcomes, _ =
      Sweep.run ~config ~cache:(Cache.in_memory ()) (points3 ()) tiny_kernels
    in
    outcomes
  in
  let serial = run 1 and parallel = run 2 in
  Alcotest.(check bool) "identical outcomes" true (serial = parallel);
  Alcotest.(check string) "byte-identical report"
    (Report.render serial) (Report.render parallel);
  Alcotest.(check string) "byte-identical CSV" (Report.csv serial) (Report.csv parallel)

let test_sweep_smoke_results () =
  let outcomes, stats =
    Sweep.run ~cache:(Cache.in_memory ()) (points3 ()) tiny_kernels
  in
  Alcotest.(check int) "3 points x 2 kernels" 6 stats.Sweep.pairs;
  List.iter
    (fun (r : Outcome.point_result) ->
      List.iter
        (fun (kernel, status) ->
          match status with
          | Outcome.Mapped m ->
            Alcotest.(check bool) (kernel ^ " positive energy") true (m.Outcome.energy_nj > 0.0);
            Alcotest.(check bool) (kernel ^ " positive throughput") true
              (m.Outcome.throughput_mips > 0.0)
          | Outcome.Failed msg -> Alcotest.fail (kernel ^ " failed: " ^ msg)
          | Outcome.Timed_out -> Alcotest.fail (kernel ^ " timed out"))
        r.Outcome.per_kernel)
    outcomes;
  let frontier = Report.frontier_summaries outcomes in
  Alcotest.(check bool) "frontier non-empty" true (frontier <> [])

let test_sweep_mapper_stats () =
  let sink = Iced_mapper.Mapper.create_stats () in
  let _, stats =
    Sweep.run ~mapper_stats:sink ~cache:(Cache.in_memory ()) (points3 ()) tiny_kernels
  in
  Alcotest.(check bool) "fresh mappings happened" true (stats.Sweep.fresh > 0);
  Alcotest.(check bool) "attempts accumulated" true
    (sink.Iced_mapper.Mapper.attempts >= stats.Sweep.fresh);
  Alcotest.(check bool) "routes accumulated" true (sink.Iced_mapper.Mapper.route_calls > 0);
  (* a fully-cached sweep runs the mapper zero times *)
  let cache = Cache.in_memory () in
  let _ = Sweep.run ~cache (points3 ()) tiny_kernels in
  let sink2 = Iced_mapper.Mapper.create_stats () in
  let _, stats2 = Sweep.run ~mapper_stats:sink2 ~cache (points3 ()) tiny_kernels in
  Alcotest.(check int) "all cached" 0 stats2.Sweep.fresh;
  Alcotest.(check int) "no mapper work recorded" 0 sink2.Iced_mapper.Mapper.attempts

let test_sweep_timeout_skips () =
  let config = { Sweep.default_config with Sweep.timeout_s = -1.0 } in
  let outcomes, stats =
    Sweep.run ~config
      ~cache:(Cache.in_memory ())
      [ List.hd (points3 ()) ]
      (List.filteri (fun i _ -> i < 1) tiny_kernels)
  in
  Alcotest.(check int) "the pair timed out" 1 stats.Sweep.timed_out;
  match outcomes with
  | [ { Outcome.per_kernel = [ (_, Outcome.Timed_out) ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single timed-out pair"

let suite =
  [
    ("space: enumeration is valid", `Quick, test_space_enumerate_valid);
    ("space: non-tiling islands filtered", `Quick, test_space_filters_non_tiling);
    ("space: to_string/of_string roundtrip", `Quick, test_space_roundtrip);
    ("space: sampling deterministic", `Quick, test_space_sample_deterministic);
    ("pool: parallel matches serial", `Quick, test_pool_matches_serial);
    ("pool: on_item fires per item", `Quick, test_pool_on_item_counts);
    ("pareto: hand-built frontier", `Quick, test_pareto_hand_built);
    ("pareto: duplicates survive", `Quick, test_pareto_duplicates_survive);
    ("pareto: nan excluded", `Quick, test_pareto_nan_excluded);
    ("cache: file roundtrip", `Quick, test_cache_roundtrip);
    ("cache: corrupt lines skipped", `Quick, test_cache_skips_corrupt_lines);
    ("cache: version mismatch resets", `Quick, test_cache_version_mismatch_resets);
    ("cache: content hash stable", `Quick, test_cache_content_hash_stable);
    ("cache: truncation at every byte recovers prefix", `Slow, test_cache_truncation_at_every_byte);
    ("cache: any flipped byte keeps intact prefix", `Slow, test_cache_flip_any_byte_keeps_prefix);
    ("cache: prepended garbage set aside as .bak", `Quick, test_cache_garbage_prepended_sets_aside);
    ("cache: fsync roundtrip", `Quick, test_cache_fsync_roundtrip);
    ("cache: wal frames match frame_record", `Quick, test_cache_wal_frame_consistency);
    ("sweep: second run is all cache hits", `Slow, test_sweep_cache_hit_semantics);
    ("sweep: 2 workers = serial, byte-identical", `Slow, test_sweep_parallel_matches_serial);
    ("sweep: smoke over a tiny space", `Quick, test_sweep_smoke_results);
    ("sweep: per-point timeout skips", `Quick, test_sweep_timeout_skips);
    ("sweep: mapper telemetry accumulates", `Quick, test_sweep_mapper_stats);
  ]
