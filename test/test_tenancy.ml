(* Tests for multi-tenant fabric sharing: the power cap is respected in
   every round (a qcheck invariant over random fleets), fair-share never
   starves anyone even at the tightest feasible cap, a single-tenant
   shared run reproduces the solo runner byte-for-byte, sweeps are
   byte-identical across worker counts and reruns, and the arbitration
   policies order their victims as documented. *)

module Qos = Iced_tenancy.Qos
module Tenant = Iced_tenancy.Tenant
module Allocator = Iced_tenancy.Allocator
module Scheduler = Iced_tenancy.Scheduler
module Capsweep = Iced_tenancy.Capsweep
module Runner = Iced_stream.Runner
module Dvfs = Iced_arch.Dvfs
module Cgra = Iced_arch.Cgra

let plan_fleet ?spec ~inputs ~seed count =
  match Scheduler.plan ?spec (Tenant.synthetic_mix ~inputs ~seed ~count ()) with
  | Ok plan -> plan
  | Error msg -> Alcotest.failf "planning failed: %s" msg

(* ---------------- names and round-trips ---------------- *)

let test_name_roundtrips () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (Qos.to_string c) true (Qos.of_string (Qos.to_string c) = Some c))
    Qos.all;
  Alcotest.(check bool) "junk class rejected" true (Qos.of_string "platinum" = None);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Allocator.policy_to_string p)
        true
        (Allocator.policy_of_string (Allocator.policy_to_string p) = Some p))
    Allocator.all_policies;
  Alcotest.(check bool) "short forms accepted" true
    (Allocator.policy_of_string "fair" = Some Allocator.Fair_share
    && Allocator.policy_of_string "qos" = Some Allocator.Weighted_qos
    && Allocator.policy_of_string "priority" = Some Allocator.Strict_priority);
  Alcotest.(check bool) "junk policy rejected" true (Allocator.policy_of_string "yolo" = None)

(* ---------------- the load-bearing identity ---------------- *)

(* a 1-tenant shared run with the default identity arbitration must be
   indistinguishable from Runner.run on the same partition and stream:
   window reports are all floats, so structural equality here is byte
   equality of any rendering *)
let test_single_tenant_identity () =
  let plan = plan_fleet ~inputs:30 ~seed:5 1 in
  let p = List.hd plan.Scheduler.placements in
  let partition = List.assoc p.Scheduler.islands p.Scheduler.partitions in
  let tenant = p.Scheduler.tenant in
  let shared =
    Runner.run_shared ~trace:false ~fabric:plan.Scheduler.spec.Scheduler.fabric
      [ { Runner.tenant = tenant.Tenant.id; partition; stream = tenant.Tenant.inputs } ]
  in
  let solo = Runner.run ~trace:false partition Runner.Iced_dvfs tenant.Tenant.inputs in
  Alcotest.(check bool) "tenant_reports = Runner.run" true
    (List.assoc tenant.Tenant.id shared.Runner.tenant_reports = solo);
  Alcotest.(check (list (pair string int))) "nothing evicted" [] shared.Runner.evicted

(* ---------------- cap invariant (qcheck) ---------------- *)

(* for any fleet and any cap at or above the all-rest floor fraction,
   every feasible round holds measured power <= cap and every tenant
   finishes its stream *)
let prop_cap_respected =
  QCheck.Test.make ~name:"cap respected and nobody starves" ~count:6
    QCheck.(triple (2 -- 4) (0 -- 999) (45 -- 100))
    (fun (count, seed, pct) ->
      let plan = plan_fleet ~inputs:12 ~seed count in
      let cap = float_of_int pct /. 100.0 *. Scheduler.max_envelope_mw plan in
      let r = Scheduler.run ~cap_mw:cap ~policy:Allocator.Fair_share plan in
      r.Scheduler.cap_ok
      && Scheduler.starved r = []
      && (r.Scheduler.infeasible_rounds > 0 || r.Scheduler.peak_power_mw <= cap +. 1e-9))

(* ---------------- determinism ---------------- *)

let test_sweep_determinism () =
  let fractions = [ 1.0; 0.6 ] in
  let plan = plan_fleet ~inputs:16 ~seed:3 3 in
  let j1 = Capsweep.sweep_json (Capsweep.run ~fractions ~workers:1 plan) in
  let j3 = Capsweep.sweep_json (Capsweep.run ~fractions ~workers:3 plan) in
  Alcotest.(check string) "workers 1 = workers 3" j1 j3;
  (* a fresh same-seed plan reproduces the bytes too *)
  let jr =
    Capsweep.sweep_json (Capsweep.run ~fractions ~workers:1 (plan_fleet ~inputs:16 ~seed:3 3))
  in
  Alcotest.(check string) "same-seed rerun" j1 jr

(* ---------------- starvation regression ---------------- *)

(* the tightest feasible cap is maximum contention: fair-share must
   throttle hard yet still let every tenant finish *)
let test_fair_share_tight_cap_no_starvation () =
  let plan = plan_fleet ~inputs:20 ~seed:1 4 in
  let cap = Scheduler.floor_envelope_mw plan *. 1.02 in
  let r = Scheduler.run ~cap_mw:cap ~policy:Allocator.Fair_share plan in
  Alcotest.(check bool) "cap ok" true r.Scheduler.cap_ok;
  Alcotest.(check int) "feasible throughout" 0 r.Scheduler.infeasible_rounds;
  Alcotest.(check (list string)) "nobody starved" [] (Scheduler.starved r);
  Alcotest.(check bool) "contention actually throttled" true
    (List.exists (fun rr -> rr.Scheduler.throttled <> []) r.Scheduler.rounds);
  List.iter
    (fun (s : Scheduler.tenant_summary) ->
      Alcotest.(check int) (s.Scheduler.id ^ " completed") s.Scheduler.offered
        s.Scheduler.completed)
    r.Scheduler.tenants

(* a cap below the all-rest floor is cap exhaustion: flagged infeasible,
   floor granted best-effort, still nobody starves *)
let test_cap_exhaustion_flagged () =
  let plan = plan_fleet ~inputs:12 ~seed:2 3 in
  let cap = Scheduler.floor_envelope_mw plan *. 0.8 in
  let r = Scheduler.run ~cap_mw:cap ~policy:Allocator.Fair_share plan in
  Alcotest.(check bool) "infeasible rounds flagged" true (r.Scheduler.infeasible_rounds > 0);
  Alcotest.(check (list string)) "still nobody starved" [] (Scheduler.starved r)

(* ---------------- policy ordering ---------------- *)

(* two identical workloads, different QoS: under strict priority the
   batch member absorbs every demotion while premium keeps Normal *)
let test_strict_priority_protects_premium () =
  let fabric = Cgra.make ~rows:4 ~cols:4 () in
  let members () =
    [ Allocator.member ~id:"a" ~qos:Qos.Premium [ ("k", 4) ];
      Allocator.member ~id:"b" ~qos:Qos.Batch [ ("k", 4) ] ]
  in
  let desired = [ ("a", [ ("k", Dvfs.Normal) ]); ("b", [ ("k", Dvfs.Normal) ]) ] in
  let probe = Allocator.create ~policy:Allocator.Strict_priority ~fabric (members ()) in
  (* a cap that fits premium at Normal only if batch drops to Rest *)
  let cap =
    Allocator.envelope_mw probe
      [ ("a", [ ("k", Dvfs.Normal) ]); ("b", [ ("k", Dvfs.Rest) ]) ]
    +. 0.001
  in
  let strict =
    Allocator.create ~cap_mw:cap ~policy:Allocator.Strict_priority ~fabric (members ())
  in
  let granted = Allocator.arbitrate strict ~round:0 desired in
  Alcotest.(check bool) "premium keeps Normal" true
    (List.assoc "k" (List.assoc "a" granted) = Dvfs.Normal);
  Alcotest.(check bool) "batch demoted to Rest" true
    (List.assoc "k" (List.assoc "b" granted) = Dvfs.Rest);
  (* fair-share at the same cap spreads demotions instead: equal
     envelopes tie-break on id, so "a" is the first victim *)
  let fair =
    Allocator.create ~cap_mw:cap ~policy:Allocator.Fair_share ~fabric (members ())
  in
  let fair_granted = Allocator.arbitrate fair ~round:0 desired in
  Alcotest.(check bool) "fair-share demotes a too" true
    (List.assoc "k" (List.assoc "a" fair_granted) <> Dvfs.Normal)

(* ---------------- fault-driven reallocation ---------------- *)

let test_fault_reallocation_across_tenants () =
  let spec = { Scheduler.default_spec with Scheduler.faults = 3; fault_seed = 11 } in
  let plan = plan_fleet ~spec ~inputs:40 ~seed:1 4 in
  let r = Scheduler.run ~policy:Allocator.Fair_share plan in
  Alcotest.(check bool) "faults fired" true (r.Scheduler.faults_injected > 0);
  Alcotest.(check bool) "islands moved or tenants evicted" true
    (r.Scheduler.reallocations + r.Scheduler.evictions > 0);
  Alcotest.(check (list string)) "survivors all finished" [] (Scheduler.starved r);
  (* determinism holds under faults too *)
  let r2 = Scheduler.run ~policy:Allocator.Fair_share (plan_fleet ~spec ~inputs:40 ~seed:1 4) in
  Alcotest.(check string) "fault run byte-identical on rerun" (Scheduler.report_json r)
    (Scheduler.report_json r2)

let suite =
  [
    ("qos and policy name round-trips", `Quick, test_name_roundtrips);
    ("single tenant = solo runner, byte-for-byte", `Quick, test_single_tenant_identity);
    QCheck_alcotest.to_alcotest prop_cap_respected;
    ("cap sweep deterministic across workers and reruns", `Quick, test_sweep_determinism);
    ("fair-share never starves at the tightest cap", `Quick, test_fair_share_tight_cap_no_starvation);
    ("caps below the floor flag exhaustion", `Quick, test_cap_exhaustion_flagged);
    ("strict priority shields premium, fair-share spreads", `Quick, test_strict_priority_protects_premium);
    ("faults reallocate islands across tenants", `Quick, test_fault_reallocation_across_tenants);
  ]
